#include "columnar/value.h"

#include <cstdio>

#include "columnar/datetime.h"
#include "common/hash.h"
#include "common/strings.h"

namespace bauplan::columnar {

Value Value::Timestamp(int64_t micros) {
  return Value(Repr(TimestampTag{micros}));
}

TypeId Value::type() const {
  switch (repr_.index()) {
    case 1:
      return TypeId::kBool;
    case 2:
      return TypeId::kInt64;
    case 3:
      return TypeId::kDouble;
    case 4:
      return TypeId::kString;
    case 5:
      return TypeId::kTimestamp;
    default:
      return TypeId::kInt64;
  }
}

int64_t Value::int64_value() const {
  if (std::holds_alternative<TimestampTag>(repr_)) {
    return std::get<TimestampTag>(repr_).micros;
  }
  return std::get<int64_t>(repr_);
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      if (is_null()) break;
      return static_cast<double>(int64_value());
    case TypeId::kDouble:
      return double_value();
    default:
      break;
  }
  return Status::InvalidArgument(
      StrCat("value is not numeric: ", ToString()));
}

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;

  TypeId a = type();
  TypeId b = other.type();
  if (IsNumeric(a) && IsNumeric(b)) {
    // Exact integer comparison when both sides are integer-backed.
    if (a != TypeId::kDouble && b != TypeId::kDouble) {
      int64_t x = int64_value();
      int64_t y = other.int64_value();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = *AsDouble();
    double y = *other.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a != b) {
    // Mixed non-numeric types order by type id (total order for sorting).
    return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
  }
  switch (a) {
    case TypeId::kBool: {
      bool x = bool_value(), y = other.bool_value();
      return x == y ? 0 : (x ? 1 : -1);
    }
    case TypeId::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

uint64_t Value::Hash() const {
  switch (type()) {
    case TypeId::kBool:
      return is_null() ? 0 : (bool_value() ? 0x9E37ULL : 0x79B9ULL);
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      if (is_null()) return 0;
      int64_t v = int64_value();
      return Fnv1a64(&v, sizeof(v));
    }
    case TypeId::kDouble: {
      if (is_null()) return 0;
      double v = double_value();
      // Normalize -0.0 so equal values hash equally.
      if (v == 0.0) v = 0.0;
      return Fnv1a64(&v, sizeof(v));
    }
    case TypeId::kString:
      return is_null() ? 0 : Fnv1a64(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type()) {
    case TypeId::kBool:
      return bool_value() ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(int64_value());
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_value());
      return buf;
    }
    case TypeId::kString:
      return string_value();
    case TypeId::kTimestamp:
      return FormatTimestampString(int64_value());
  }
  return "?";
}

void Value::Serialize(BinaryWriter* writer) const {
  if (is_null()) {
    writer->PutU8(0);
    return;
  }
  writer->PutU8(static_cast<uint8_t>(type()) + 1);
  switch (type()) {
    case TypeId::kBool:
      writer->PutBool(bool_value());
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      writer->PutI64(int64_value());
      break;
    case TypeId::kDouble:
      writer->PutDouble(double_value());
      break;
    case TypeId::kString:
      writer->PutString(string_value());
      break;
  }
}

Result<Value> Value::Deserialize(BinaryReader* reader) {
  BAUPLAN_ASSIGN_OR_RETURN(uint8_t tag, reader->GetU8());
  if (tag == 0) return Value::Null();
  TypeId type = static_cast<TypeId>(tag - 1);
  switch (type) {
    case TypeId::kBool: {
      BAUPLAN_ASSIGN_OR_RETURN(bool v, reader->GetBool());
      return Value::Bool(v);
    }
    case TypeId::kInt64: {
      BAUPLAN_ASSIGN_OR_RETURN(int64_t v, reader->GetI64());
      return Value::Int64(v);
    }
    case TypeId::kDouble: {
      BAUPLAN_ASSIGN_OR_RETURN(double v, reader->GetDouble());
      return Value::Double(v);
    }
    case TypeId::kString: {
      BAUPLAN_ASSIGN_OR_RETURN(std::string v, reader->GetString());
      return Value::String(std::move(v));
    }
    case TypeId::kTimestamp: {
      BAUPLAN_ASSIGN_OR_RETURN(int64_t v, reader->GetI64());
      return Value::Timestamp(v);
    }
  }
  return Status::IOError("invalid value tag in binary payload");
}

}  // namespace bauplan::columnar
