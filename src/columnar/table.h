#ifndef BAUPLAN_COLUMNAR_TABLE_H_
#define BAUPLAN_COLUMNAR_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "columnar/array.h"
#include "columnar/type.h"
#include "common/result.h"

namespace bauplan::columnar {

/// An immutable, in-memory columnar table: a schema plus one array per
/// field, all of equal length. Tables are the unit of data exchanged
/// between the SQL engine, the expectation framework and the pipeline
/// runtime — the "common dialect over tuples" of the paper's section 4.4.1.
class Table {
 public:
  /// Empty table with an empty schema.
  Table() = default;

  /// Validates that columns match the schema arity/types and lengths agree.
  static Result<Table> Make(Schema schema, std::vector<ArrayPtr> columns);

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const ArrayPtr& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  const std::vector<ArrayPtr>& columns() const { return columns_; }

  /// The column named `name`; NotFound if absent.
  Result<ArrayPtr> GetColumnByName(std::string_view name) const;

  /// Returns a table with only `names`, in the given order.
  Result<Table> SelectColumns(const std::vector<std::string>& names) const;

  /// Returns a copy with an extra column appended.
  Result<Table> AddColumn(const Field& field, ArrayPtr column) const;

  /// Boxes cell (row, col); slow path for tests and printing.
  Value GetValue(int64_t row, int col) const {
    return columns_[static_cast<size_t>(col)]->GetValue(row);
  }

  /// Estimated in-memory footprint in bytes (used by the runtime's memory
  /// budgeting and the storage cost model).
  int64_t EstimatedBytes() const;

  /// Renders up to `max_rows` as an aligned text grid.
  std::string ToString(int64_t max_rows = 20) const;

 private:
  Table(Schema schema, std::vector<ArrayPtr> columns, int64_t num_rows)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        num_rows_(num_rows) {}

  Schema schema_;
  std::vector<ArrayPtr> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace bauplan::columnar

#endif  // BAUPLAN_COLUMNAR_TABLE_H_
