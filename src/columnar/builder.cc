#include "columnar/builder.h"

#include "common/strings.h"

namespace bauplan::columnar {

namespace {

/// Backfills an all-valid prefix the first time a null is appended, so
/// null-free arrays never allocate validity.
void EnsureValidity(std::vector<uint8_t>* validity, bool* has_nulls,
                    size_t current_length) {
  if (!*has_nulls) {
    validity->assign(current_length, 1);
    *has_nulls = true;
  }
}

Status TypeMismatch(TypeId expected, const Value& value) {
  return Status::InvalidArgument(
      StrCat("cannot append ", TypeIdToString(value.type()), " value '",
             value.ToString(), "' to ", TypeIdToString(expected),
             " builder"));
}

}  // namespace

std::unique_ptr<ArrayBuilder> MakeBuilder(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return std::make_unique<BoolBuilder>();
    case TypeId::kInt64:
      return std::make_unique<Int64Builder>();
    case TypeId::kDouble:
      return std::make_unique<DoubleBuilder>();
    case TypeId::kString:
      return std::make_unique<StringBuilder>();
    case TypeId::kTimestamp:
      return std::make_unique<Int64Builder>(TypeId::kTimestamp);
  }
  return nullptr;
}

void Int64Builder::AppendNull() {
  EnsureValidity(&validity_, &has_nulls_, values_.size());
  values_.push_back(0);
  validity_.push_back(0);
  ++null_count_;
}

Status Int64Builder::AppendValue(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (value.type() != TypeId::kInt64 && value.type() != TypeId::kTimestamp) {
    return TypeMismatch(type_, value);
  }
  Append(value.int64_value());
  return Status::OK();
}

ArrayPtr Int64Builder::Finish() {
  auto arr = std::make_shared<Int64Array>(std::move(values_),
                                          std::move(validity_), null_count_,
                                          type_);
  values_.clear();
  validity_.clear();
  has_nulls_ = false;
  null_count_ = 0;
  return arr;
}

void DoubleBuilder::AppendNull() {
  EnsureValidity(&validity_, &has_nulls_, values_.size());
  values_.push_back(0.0);
  validity_.push_back(0);
  ++null_count_;
}

Status DoubleBuilder::AppendValue(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (value.type() == TypeId::kDouble) {
    Append(value.double_value());
    return Status::OK();
  }
  if (value.type() == TypeId::kInt64) {
    Append(static_cast<double>(value.int64_value()));
    return Status::OK();
  }
  return TypeMismatch(TypeId::kDouble, value);
}

ArrayPtr DoubleBuilder::Finish() {
  auto arr = std::make_shared<DoubleArray>(std::move(values_),
                                           std::move(validity_), null_count_);
  values_.clear();
  validity_.clear();
  has_nulls_ = false;
  null_count_ = 0;
  return arr;
}

void BoolBuilder::AppendNull() {
  EnsureValidity(&validity_, &has_nulls_, values_.size());
  values_.push_back(0);
  validity_.push_back(0);
  ++null_count_;
}

Status BoolBuilder::AppendValue(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (value.type() != TypeId::kBool) return TypeMismatch(TypeId::kBool, value);
  Append(value.bool_value());
  return Status::OK();
}

ArrayPtr BoolBuilder::Finish() {
  auto arr = std::make_shared<BoolArray>(std::move(values_),
                                         std::move(validity_), null_count_);
  values_.clear();
  validity_.clear();
  has_nulls_ = false;
  null_count_ = 0;
  return arr;
}

void StringBuilder::AppendNull() {
  EnsureValidity(&validity_, &has_nulls_, offsets_.size() - 1);
  offsets_.push_back(static_cast<uint32_t>(data_.size()));
  validity_.push_back(0);
  ++null_count_;
}

Status StringBuilder::AppendValue(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (value.type() != TypeId::kString) {
    return TypeMismatch(TypeId::kString, value);
  }
  Append(value.string_value());
  return Status::OK();
}

ArrayPtr StringBuilder::Finish() {
  auto arr = std::make_shared<StringArray>(std::move(data_),
                                           std::move(offsets_),
                                           std::move(validity_), null_count_);
  data_.clear();
  offsets_.clear();
  offsets_.push_back(0);
  validity_.clear();
  has_nulls_ = false;
  null_count_ = 0;
  return arr;
}

}  // namespace bauplan::columnar
