#include "columnar/type.h"

#include "common/strings.h"

namespace bauplan::columnar {

std::string_view TypeIdToString(TypeId id) {
  switch (id) {
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kDouble:
      return "double";
    case TypeId::kString:
      return "string";
    case TypeId::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

Result<TypeId> TypeIdFromString(std::string_view name) {
  if (name == "bool") return TypeId::kBool;
  if (name == "int64") return TypeId::kInt64;
  if (name == "double") return TypeId::kDouble;
  if (name == "string") return TypeId::kString;
  if (name == "timestamp") return TypeId::kTimestamp;
  return Status::InvalidArgument(StrCat("unknown type name: ", name));
}

std::string Field::ToString() const {
  return StrCat(name, ": ", TypeIdToString(type), nullable ? "" : " not null");
}

int Schema::GetFieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<Field> Schema::GetFieldByName(std::string_view name) const {
  int idx = GetFieldIndex(name);
  if (idx < 0) {
    return Status::NotFound(StrCat("no field named '", name, "' in schema"));
  }
  return fields_[static_cast<size_t>(idx)];
}

Result<Schema> Schema::AddField(const Field& field) const {
  if (HasField(field.name)) {
    return Status::AlreadyExists(
        StrCat("field '", field.name, "' already exists"));
  }
  std::vector<Field> fields = fields_;
  fields.push_back(field);
  return Schema(std::move(fields));
}

Result<Schema> Schema::RemoveField(std::string_view name) const {
  int idx = GetFieldIndex(name);
  if (idx < 0) {
    return Status::NotFound(StrCat("no field named '", name, "' in schema"));
  }
  std::vector<Field> fields = fields_;
  fields.erase(fields.begin() + idx);
  return Schema(std::move(fields));
}

Result<Schema> Schema::Select(const std::vector<std::string>& names) const {
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (const auto& name : names) {
    BAUPLAN_ASSIGN_OR_RETURN(Field f, GetFieldByName(name));
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "schema(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].ToString();
  }
  out += ")";
  return out;
}

void Schema::Serialize(BinaryWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(fields_.size()));
  for (const auto& f : fields_) {
    writer->PutString(f.name);
    writer->PutU8(static_cast<uint8_t>(f.type));
    writer->PutBool(f.nullable);
  }
}

Result<Schema> Schema::Deserialize(BinaryReader* reader) {
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t n, reader->GetU32());
  // Each serialized field needs at least 6 bytes; a larger count is
  // corruption and must not drive the reserve below.
  if (n > reader->Remaining()) {
    return Status::IOError("implausible field count in schema");
  }
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Field f;
    BAUPLAN_ASSIGN_OR_RETURN(f.name, reader->GetString());
    BAUPLAN_ASSIGN_OR_RETURN(uint8_t type, reader->GetU8());
    if (type > static_cast<uint8_t>(TypeId::kTimestamp)) {
      return Status::IOError("invalid type id in serialized schema");
    }
    f.type = static_cast<TypeId>(type);
    BAUPLAN_ASSIGN_OR_RETURN(f.nullable, reader->GetBool());
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

}  // namespace bauplan::columnar
