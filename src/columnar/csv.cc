#include "columnar/csv.h"

#include <charconv>
#include <cstdlib>

#include "columnar/builder.h"
#include "columnar/datetime.h"
#include "common/strings.h"

namespace bauplan::columnar {

namespace {

/// One parsed cell: text plus whether it was quoted (quoted empties are
/// empty strings, unquoted empties are nulls).
struct Cell {
  std::string text;
  bool quoted = false;

  bool IsNull() const { return !quoted && text.empty(); }
};

/// Splits CSV text into rows of cells, honoring quotes.
Result<std::vector<std::vector<Cell>>> ParseRows(std::string_view text,
                                                 char delimiter) {
  std::vector<std::vector<Cell>> rows;
  std::vector<Cell> row;
  Cell cell;
  bool in_quotes = false;
  size_t i = 0;
  const size_t n = text.size();
  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell = Cell();
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          cell.text += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      cell.text += c;
      ++i;
      continue;
    }
    if (c == '"' && cell.text.empty() && !cell.quoted) {
      in_quotes = true;
      cell.quoted = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      end_cell();
      ++i;
      continue;
    }
    if (c == '\r') {
      ++i;  // swallow; \n ends the row
      continue;
    }
    if (c == '\n') {
      end_row();
      ++i;
      continue;
    }
    cell.text += c;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV");
  }
  // Final row without trailing newline.
  if (!cell.text.empty() || cell.quoted || !row.empty()) end_row();
  return rows;
}

bool ParsesAsInt64(const std::string& s, int64_t* out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && p == s.data() + s.size();
}

bool ParsesAsDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParsesAsTimestamp(const std::string& s, int64_t* out) {
  auto parsed = ParseTimestampString(s);
  if (!parsed.ok()) return false;
  *out = *parsed;
  return true;
}

}  // namespace

Result<Table> ReadCsv(std::string_view text, const CsvReadOptions& options) {
  BAUPLAN_ASSIGN_OR_RETURN(auto rows, ParseRows(text, options.delimiter));
  if (rows.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }

  // Header.
  std::vector<std::string> names;
  size_t first_data_row = 0;
  size_t width = rows[0].size();
  if (options.has_header) {
    for (const auto& cell : rows[0]) names.push_back(cell.text);
    first_data_row = 1;
  } else {
    for (size_t c = 0; c < width; ++c) names.push_back(StrCat("c", c));
  }
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    if (rows[r].size() != width) {
      return Status::InvalidArgument(
          StrCat("CSV row ", r + 1, " has ", rows[r].size(),
                 " fields, expected ", width));
    }
  }

  // Type inference per column over a sample.
  size_t sample_end = rows.size();
  if (options.inference_rows > 0) {
    sample_end = std::min(
        rows.size(),
        first_data_row + static_cast<size_t>(options.inference_rows));
  }
  std::vector<TypeId> types(width, TypeId::kString);
  for (size_t c = 0; c < width; ++c) {
    bool all_int = true, all_double = true, all_ts = true;
    bool any_value = false;
    for (size_t r = first_data_row; r < sample_end; ++r) {
      const Cell& cell = rows[r][c];
      if (cell.IsNull()) continue;
      any_value = true;
      int64_t i64;
      double d;
      if (!ParsesAsInt64(cell.text, &i64)) all_int = false;
      if (!ParsesAsDouble(cell.text, &d)) all_double = false;
      if (!ParsesAsTimestamp(cell.text, &i64)) all_ts = false;
      if (!all_int && !all_double && !all_ts) break;
    }
    if (!any_value) {
      types[c] = TypeId::kString;
    } else if (all_int) {
      types[c] = TypeId::kInt64;
    } else if (all_double) {
      types[c] = TypeId::kDouble;
    } else if (all_ts) {
      types[c] = TypeId::kTimestamp;
    }
  }

  // Build columns.
  std::vector<Field> fields;
  std::vector<std::unique_ptr<ArrayBuilder>> builders;
  for (size_t c = 0; c < width; ++c) {
    fields.push_back({names[c], types[c], true});
    builders.push_back(MakeBuilder(types[c]));
  }
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    for (size_t c = 0; c < width; ++c) {
      const Cell& cell = rows[r][c];
      if (cell.IsNull()) {
        builders[c]->AppendNull();
        continue;
      }
      switch (types[c]) {
        case TypeId::kInt64: {
          int64_t v;
          if (!ParsesAsInt64(cell.text, &v)) {
            return Status::InvalidArgument(
                StrCat("row ", r + 1, " column '", names[c], "': '",
                       cell.text, "' is not an int64 (inference sample ",
                       "was too small?)"));
          }
          BAUPLAN_RETURN_NOT_OK(builders[c]->AppendValue(Value::Int64(v)));
          break;
        }
        case TypeId::kDouble: {
          double v;
          if (!ParsesAsDouble(cell.text, &v)) {
            return Status::InvalidArgument(
                StrCat("row ", r + 1, " column '", names[c], "': '",
                       cell.text, "' is not a double"));
          }
          BAUPLAN_RETURN_NOT_OK(
              builders[c]->AppendValue(Value::Double(v)));
          break;
        }
        case TypeId::kTimestamp: {
          int64_t v;
          if (!ParsesAsTimestamp(cell.text, &v)) {
            return Status::InvalidArgument(
                StrCat("row ", r + 1, " column '", names[c], "': '",
                       cell.text, "' is not a timestamp"));
          }
          BAUPLAN_RETURN_NOT_OK(
              builders[c]->AppendValue(Value::Timestamp(v)));
          break;
        }
        default:
          BAUPLAN_RETURN_NOT_OK(
              builders[c]->AppendValue(Value::String(cell.text)));
      }
    }
  }
  std::vector<ArrayPtr> columns;
  for (auto& b : builders) columns.push_back(b->Finish());
  return Table::Make(Schema(std::move(fields)), std::move(columns));
}

std::string WriteCsv(const Table& table, char delimiter) {
  std::string out;
  auto write_field = [&](const std::string& text) {
    bool needs_quotes =
        text.find(delimiter) != std::string::npos ||
        text.find('"') != std::string::npos ||
        text.find('\n') != std::string::npos;
    if (!needs_quotes) {
      out += text;
      return;
    }
    out += '"';
    for (char c : text) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
  };
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += delimiter;
    write_field(table.schema().field(c).name);
  }
  out += '\n';
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += delimiter;
      Value v = table.GetValue(r, c);
      if (!v.is_null()) write_field(v.ToString());
    }
    out += '\n';
  }
  return out;
}

}  // namespace bauplan::columnar
