#ifndef BAUPLAN_COLUMNAR_CSV_H_
#define BAUPLAN_COLUMNAR_CSV_H_

#include <string>
#include <string_view>

#include "columnar/table.h"
#include "common/result.h"

namespace bauplan::columnar {

/// CSV ingestion options.
struct CsvReadOptions {
  char delimiter = ',';
  /// First row holds column names; otherwise columns are "c0", "c1", ...
  bool has_header = true;
  /// Rows sampled for type inference (every sampled column value must
  /// parse for a type to win; ties break int64 > double > timestamp >
  /// string). 0 = all rows.
  int64_t inference_rows = 1000;
};

/// Parses CSV text into a table. Quoted fields ("a, ""b""") are
/// supported; empty unquoted fields are nulls. All columns are nullable.
/// InvalidArgument on ragged rows.
Result<Table> ReadCsv(std::string_view text,
                      const CsvReadOptions& options = {});

/// Renders a table as CSV (header + rows). Strings containing the
/// delimiter, quotes or newlines are quoted; nulls are empty fields.
std::string WriteCsv(const Table& table, char delimiter = ',');

}  // namespace bauplan::columnar

#endif  // BAUPLAN_COLUMNAR_CSV_H_
