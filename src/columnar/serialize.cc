#include "columnar/serialize.h"

#include "columnar/array.h"

namespace bauplan::columnar {

namespace {
constexpr uint32_t kTableMagic = 0x42504C54;  // "BPLT"
/// Sanity cap on decoded array lengths: corrupt payloads must fail with
/// IOError instead of attempting absurd allocations.
constexpr uint64_t kMaxArrayLength = 1ull << 28;
}  // namespace

void SerializeArray(const Array& array, BinaryWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(array.type()));
  writer->PutU64(static_cast<uint64_t>(array.length()));
  writer->PutU64(static_cast<uint64_t>(array.null_count()));
  if (array.null_count() > 0) {
    for (int64_t i = 0; i < array.length(); ++i) {
      writer->PutU8(array.IsNull(i) ? 0 : 1);
    }
  }
  switch (array.type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      const auto* a = AsInt64(array);
      writer->PutRaw(a->values().data(), a->values().size() * sizeof(int64_t));
      break;
    }
    case TypeId::kDouble: {
      const auto* a = AsDouble(array);
      writer->PutRaw(a->values().data(), a->values().size() * sizeof(double));
      break;
    }
    case TypeId::kBool: {
      const auto* a = AsBool(array);
      for (int64_t i = 0; i < a->length(); ++i) {
        writer->PutU8(a->IsNull(i) ? 0 : (a->Value(i) ? 1 : 0));
      }
      break;
    }
    case TypeId::kString: {
      const auto* a = AsString(array);
      if (a->offsets().empty()) {
        // An empty StringArray may carry zero offsets instead of the
        // canonical single 0; normalize so the reader's length+1
        // invariant holds on round-trip.
        static constexpr uint32_t kZero = 0;
        writer->PutU64(1);
        writer->PutRaw(&kZero, sizeof(uint32_t));
      } else {
        writer->PutU64(a->offsets().size());
        writer->PutRaw(a->offsets().data(),
                       a->offsets().size() * sizeof(uint32_t));
      }
      writer->PutString(a->data());
      break;
    }
  }
}

Result<ArrayPtr> DeserializeArray(BinaryReader* reader) {
  BAUPLAN_ASSIGN_OR_RETURN(uint8_t type_tag, reader->GetU8());
  if (type_tag > static_cast<uint8_t>(TypeId::kTimestamp)) {
    return Status::IOError("invalid array type tag");
  }
  TypeId type = static_cast<TypeId>(type_tag);
  BAUPLAN_ASSIGN_OR_RETURN(uint64_t length, reader->GetU64());
  BAUPLAN_ASSIGN_OR_RETURN(uint64_t null_count, reader->GetU64());
  if (null_count > length) return Status::IOError("null_count > length");
  if (length > kMaxArrayLength) {
    return Status::IOError("implausible array length (corrupt payload)");
  }
  std::vector<uint8_t> validity;
  if (null_count > 0) {
    if (length > reader->Remaining()) {
      return Status::IOError("validity extends past payload");
    }
    validity.resize(length);
    BAUPLAN_RETURN_NOT_OK(reader->GetRaw(validity.data(), length));
  }
  switch (type) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      if (length * sizeof(int64_t) > reader->Remaining()) {
        return Status::IOError("int64 values extend past payload");
      }
      std::vector<int64_t> values(length);
      BAUPLAN_RETURN_NOT_OK(
          reader->GetRaw(values.data(), length * sizeof(int64_t)));
      return std::make_shared<Int64Array>(std::move(values),
                                          std::move(validity),
                                          static_cast<int64_t>(null_count),
                                          type);
    }
    case TypeId::kDouble: {
      if (length * sizeof(double) > reader->Remaining()) {
        return Status::IOError("double values extend past payload");
      }
      std::vector<double> values(length);
      BAUPLAN_RETURN_NOT_OK(
          reader->GetRaw(values.data(), length * sizeof(double)));
      return std::make_shared<DoubleArray>(std::move(values),
                                           std::move(validity),
                                           static_cast<int64_t>(null_count));
    }
    case TypeId::kBool: {
      if (length > reader->Remaining()) {
        return Status::IOError("bool values extend past payload");
      }
      std::vector<uint8_t> values(length);
      BAUPLAN_RETURN_NOT_OK(reader->GetRaw(values.data(), length));
      return std::make_shared<BoolArray>(std::move(values),
                                         std::move(validity),
                                         static_cast<int64_t>(null_count));
    }
    case TypeId::kString: {
      BAUPLAN_ASSIGN_OR_RETURN(uint64_t noffsets, reader->GetU64());
      if (noffsets != length + 1) {
        return Status::IOError("string offsets count mismatch");
      }
      if (noffsets * sizeof(uint32_t) > reader->Remaining()) {
        return Status::IOError("string offsets extend past payload");
      }
      std::vector<uint32_t> offsets(noffsets);
      BAUPLAN_RETURN_NOT_OK(
          reader->GetRaw(offsets.data(), noffsets * sizeof(uint32_t)));
      BAUPLAN_ASSIGN_OR_RETURN(std::string data, reader->GetString());
      if (!offsets.empty() && offsets.back() != data.size()) {
        return Status::IOError("string data size mismatch");
      }
      return std::make_shared<StringArray>(std::move(data),
                                           std::move(offsets),
                                           std::move(validity),
                                           static_cast<int64_t>(null_count));
    }
  }
  return Status::IOError("unhandled array type");
}

Bytes SerializeTable(const Table& table) {
  BinaryWriter writer;
  writer.PutU32(kTableMagic);
  table.schema().Serialize(&writer);
  writer.PutU64(static_cast<uint64_t>(table.num_rows()));
  for (int c = 0; c < table.num_columns(); ++c) {
    SerializeArray(*table.column(c), &writer);
  }
  return writer.TakeBuffer();
}

Result<Table> DeserializeTable(const Bytes& bytes) {
  BinaryReader reader(bytes);
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kTableMagic) {
    return Status::IOError("bad magic in serialized table");
  }
  BAUPLAN_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(&reader));
  BAUPLAN_ASSIGN_OR_RETURN(uint64_t rows, reader.GetU64());
  std::vector<ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(schema.num_fields()));
  for (int c = 0; c < schema.num_fields(); ++c) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, DeserializeArray(&reader));
    if (col->length() != static_cast<int64_t>(rows)) {
      return Status::IOError("column length mismatch in serialized table");
    }
    columns.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

}  // namespace bauplan::columnar
