#ifndef BAUPLAN_COLUMNAR_COMPUTE_H_
#define BAUPLAN_COLUMNAR_COMPUTE_H_

#include <cstdint>
#include <vector>

#include "columnar/array.h"
#include "columnar/table.h"
#include "common/result.h"

namespace bauplan::columnar {

/// Row indices into an array/table; the currency between filter, take and
/// sort kernels. -1 is only meaningful for TakeAllowNull (null row).
using SelectionVector = std::vector<int64_t>;

// ------------------------------------------------------------ gather

/// Gathers rows of `array` at `indices` into a new array.
Result<ArrayPtr> Take(const ArrayPtr& array, const SelectionVector& indices);

/// Like Take, but index -1 produces a null row (hash-join null extension
/// for unmatched LEFT rows).
Result<ArrayPtr> TakeAllowNull(const ArrayPtr& array,
                               const SelectionVector& indices);

/// Gathers rows of `table` at `indices` into a new table.
Result<Table> TakeTable(const Table& table, const SelectionVector& indices);

/// Keeps the rows of `table` where `mask` is true (null mask entries drop
/// the row, matching SQL WHERE semantics).
Result<Table> FilterTable(const Table& table, const BoolArray& mask);

/// Row indices where `mask` is true and not null.
SelectionVector MaskToSelection(const BoolArray& mask);

/// MaskToSelection into a caller-owned vector (cleared first, capacity
/// reused). The morsel-granular entry point for streaming pipelines: one
/// scratch selection per in-flight chunk instead of an allocation per
/// filter evaluation.
void MaskToSelectionInto(const BoolArray& mask, SelectionVector* indices);

/// Copies rows [offset, offset+length) of `array` (typed, no boxing).
Result<ArrayPtr> SliceArray(const ArrayPtr& array, int64_t offset,
                            int64_t length);

/// Vertically concatenates same-typed arrays (typed buffer appends).
Result<ArrayPtr> ConcatArrays(const std::vector<ArrayPtr>& arrays);

/// Vertically concatenates tables with identical schemas.
Result<Table> ConcatTables(const std::vector<Table>& tables);

/// Slices rows [offset, offset+length) out of `table` (copying).
Result<Table> SliceTable(const Table& table, int64_t offset, int64_t length);

/// Materializes `n` copies of `v` as a typed array (null `v` yields an
/// all-null int64 column).
ArrayPtr MakeConstantArray(const Value& v, int64_t n);

// --------------------------------------------------- elementwise kernels

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };

/// Elementwise comparison with SQL null propagation (null input -> null
/// output). Typed paths cover int64/timestamp, double, mixed numeric,
/// string and bool operands; incomparable types are InvalidArgument.
Result<ArrayPtr> CompareArrays(CompareOp op, const Array& left,
                               const Array& right);

/// Elementwise arithmetic over numeric arrays. Division always yields
/// double; any op with a double operand yields double; division/modulo by
/// zero yields null (lenient SQL semantics). Nulls propagate.
Result<ArrayPtr> ArithmeticArrays(ArithOp op, const Array& left,
                                  const Array& right);

/// Three-valued AND / OR / NOT over bool arrays.
Result<ArrayPtr> AndArrays(const Array& left, const Array& right);
Result<ArrayPtr> OrArrays(const Array& left, const Array& right);
Result<ArrayPtr> NotArray(const Array& input);

// --------------------------------------------------------- hash kernels

/// Hashes every row of `array` into `hashes` (resized to the array
/// length). When `combine` is true the new column hash is mixed into the
/// existing entries — call once per key column to get multi-column row
/// hashes without materializing boxed keys. Null rows hash to a fixed
/// tag, so null keys land in one bucket.
void HashArray(const Array& array, bool combine,
               std::vector<uint64_t>* hashes);

/// True when row `left_row` of `left` equals row `right_row` of `right`
/// column-by-column. Nulls compare equal to nulls (group-by/distinct
/// semantics; join build/probe filters null keys out beforehand). Mixed
/// int64/double columns compare numerically.
bool RowsEqual(const std::vector<ArrayPtr>& left, int64_t left_row,
               const std::vector<ArrayPtr>& right, int64_t right_row);

// ----------------------------------------------------- canonical join keys
//
// A canonical key encoding turns one row of a composite join key into a
// byte string such that two rows are RowsEqual if and only if their byte
// strings are equal. That reduces arbitrary composite-key joins to byte
// comparisons over an interned pool — the fast path for string and
// mixed-type keys. The encoding only exists for type combinations where
// byte equality is faithful to RowsEqual: int64/timestamp columns may pair
// with each other (both encode the raw 64-bit value), string pairs with
// string and bool with bool. Double columns are excluded — RowsEqual uses
// `==` (so NaN != NaN, and cross int64/double rows compare numerically),
// which no byte encoding reproduces.

/// True when a (left, right) join-key column pair of these types can take
/// the canonical-bytes fast path.
bool CanonicalKeyTypesCompatible(TypeId left, TypeId right);

/// Encodes rows [begin, end) of the composite key `keys` into
/// `out[i - begin]` (resized, previous contents discarded). Columns append
/// in order: int64/timestamp as 8 raw bytes, bool as 1 byte, strings as an
/// 8-byte length prefix plus the bytes (unambiguous for composites). Null
/// rows are the caller's concern (join null flags screen them); a null
/// cell encodes as a length-prefix tag that cannot collide with values.
Status EncodeCanonicalKeys(const std::vector<ArrayPtr>& keys, int64_t begin,
                           int64_t end, std::vector<std::string>* out);

// ---------------------------------------------------------- sort kernels

/// Sort order of one key column.
struct SortKeySpec {
  ArrayPtr array;
  bool ascending = true;
};

/// Index order that sorts by `keys` (stable: equal keys keep input
/// order). Ordering per column: nulls first ascending (last descending),
/// then values; double NaN orders after every non-NaN number. When
/// `limit` >= 0 only the first `limit` indices of the full stable order
/// are produced (top-N: LIMIT pushed into ORDER BY).
Result<SelectionVector> SortIndices(const std::vector<SortKeySpec>& keys,
                                    int64_t limit = -1);

/// K-way merge of already-sorted index runs over the same `keys` into one
/// globally sorted selection. Equal keys resolve to the lowest run index,
/// then run-internal order. When the runs are contiguous ascending slices
/// of the input each sorted by SortIndices, the merged order is exactly
/// the order SortIndices would produce over the whole input — the
/// determinism contract of the parallel sort breaker. `limit` >= 0 stops
/// after that many indices.
Result<SelectionVector> MergeSortedRuns(
    const std::vector<SortKeySpec>& keys,
    const std::vector<SelectionVector>& runs, int64_t limit = -1);

/// Row index in [begin, end) holding the smallest value under this key's
/// sort order — the same per-column order SortIndices uses (nulls first
/// ascending / last descending, double NaN after every non-NaN value).
/// Ties resolve to the earliest row; an empty range returns -1. This is
/// the bound kernel for top-N pruning: ComputeStats cannot serve here
/// because Value::Compare treats NaN as equal to everything.
int64_t SortExtremeRow(const SortKeySpec& key, int64_t begin, int64_t end);

// ------------------------------------------------------------ statistics

/// Min/max/null statistics of one column, used for file zone maps.
struct ColumnStats {
  Value min;  // null when all values are null or the column is empty
  Value max;
  int64_t null_count = 0;
  int64_t value_count = 0;
};

/// Computes min/max/null stats over an array.
ColumnStats ComputeStats(const Array& array);

}  // namespace bauplan::columnar

#endif  // BAUPLAN_COLUMNAR_COMPUTE_H_
