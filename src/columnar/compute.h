#ifndef BAUPLAN_COLUMNAR_COMPUTE_H_
#define BAUPLAN_COLUMNAR_COMPUTE_H_

#include <cstdint>
#include <vector>

#include "columnar/array.h"
#include "columnar/table.h"
#include "common/result.h"

namespace bauplan::columnar {

/// Gathers rows of `array` at `indices` into a new array.
Result<ArrayPtr> Take(const ArrayPtr& array,
                      const std::vector<int64_t>& indices);

/// Gathers rows of `table` at `indices` into a new table.
Result<Table> TakeTable(const Table& table,
                        const std::vector<int64_t>& indices);

/// Keeps the rows of `table` where `mask` is true (null mask entries drop
/// the row, matching SQL WHERE semantics).
Result<Table> FilterTable(const Table& table, const BoolArray& mask);

/// Vertically concatenates tables with identical schemas.
Result<Table> ConcatTables(const std::vector<Table>& tables);

/// Slices rows [offset, offset+length) out of `table` (copying).
Result<Table> SliceTable(const Table& table, int64_t offset, int64_t length);

/// Min/max/null statistics of one column, used for file zone maps.
struct ColumnStats {
  Value min;  // null when all values are null or the column is empty
  Value max;
  int64_t null_count = 0;
  int64_t value_count = 0;
};

/// Computes min/max/null stats over an array.
ColumnStats ComputeStats(const Array& array);

}  // namespace bauplan::columnar

#endif  // BAUPLAN_COLUMNAR_COMPUTE_H_
