#ifndef BAUPLAN_COLUMNAR_DATETIME_H_
#define BAUPLAN_COLUMNAR_DATETIME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace bauplan::columnar {

/// Parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS" (UTC) into microseconds
/// since the Unix epoch; InvalidArgument on malformed input. This is how
/// date literals in SQL (e.g. `pickup_at >= '2019-04-01'`) become timestamp
/// comparisons.
Result<int64_t> ParseTimestampString(std::string_view text);

/// Renders epoch-microseconds as "YYYY-MM-DD HH:MM:SS" (UTC); drops the time
/// part when it is midnight.
std::string FormatTimestampString(int64_t epoch_micros);

}  // namespace bauplan::columnar

#endif  // BAUPLAN_COLUMNAR_DATETIME_H_
