#ifndef BAUPLAN_COLUMNAR_SERIALIZE_H_
#define BAUPLAN_COLUMNAR_SERIALIZE_H_

#include "columnar/table.h"
#include "common/bytes.h"
#include "common/result.h"

namespace bauplan::columnar {

/// Serializes a table into a self-describing binary payload (schema +
/// per-column buffers). Used when the naive pipeline executor spills
/// intermediate artifacts through object storage, and for the runtime's
/// shared-memory hand-off between fused functions.
Bytes SerializeTable(const Table& table);

/// Inverse of SerializeTable; IOError on corrupt payloads.
Result<Table> DeserializeTable(const Bytes& bytes);

/// Serializes a single array (with a leading type tag).
void SerializeArray(const Array& array, BinaryWriter* writer);

/// Reads one array of `type` and `length` from the reader.
Result<ArrayPtr> DeserializeArray(BinaryReader* reader);

}  // namespace bauplan::columnar

#endif  // BAUPLAN_COLUMNAR_SERIALIZE_H_
