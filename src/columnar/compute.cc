#include "columnar/compute.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "columnar/builder.h"
#include "common/hash.h"
#include "common/strings.h"

namespace bauplan::columnar {

namespace {

/// Hash tag for null rows: nulls hash equal so null group-by/distinct
/// keys land in one bucket.
constexpr uint64_t kNullHash = 0x9E3779B97F4A7C15ULL;

bool IsInt64Backed(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kTimestamp;
}

/// Validity of an elementwise binary result: null where either input is.
std::vector<uint8_t> CombinedValidity(const Array& l, const Array& r,
                                      int64_t* null_count) {
  *null_count = 0;
  if (l.null_count() == 0 && r.null_count() == 0) return {};
  std::vector<uint8_t> validity(static_cast<size_t>(l.length()), 1);
  for (int64_t i = 0; i < l.length(); ++i) {
    if (l.IsNull(i) || r.IsNull(i)) {
      validity[static_cast<size_t>(i)] = 0;
      ++*null_count;
    }
  }
  return validity;
}

bool CompareResult(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

/// Total order over doubles used by comparisons and sorts: NaN orders
/// after every non-NaN value and equals itself, so sort comparators stay
/// a strict weak ordering even with NaN keys.
int CompareDouble(double a, double b) {
  bool a_nan = std::isnan(a), b_nan = std::isnan(b);
  if (a_nan || b_nan) return a_nan == b_nan ? 0 : (a_nan ? 1 : -1);
  return a < b ? -1 : (a > b ? 1 : 0);
}

int CompareInt64(int64_t a, int64_t b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

/// Emits one bool per row from a three-way comparison callback; rows
/// where either input is null come out null.
template <typename Cmp>
ArrayPtr CompareLoop(CompareOp op, const Array& l, const Array& r,
                     Cmp&& cmp) {
  int64_t n = l.length();
  int64_t nulls = 0;
  std::vector<uint8_t> validity = CombinedValidity(l, r, &nulls);
  std::vector<uint8_t> values(static_cast<size_t>(n), 0);
  if (nulls == 0) {
    for (int64_t i = 0; i < n; ++i) {
      values[static_cast<size_t>(i)] = CompareResult(op, cmp(i)) ? 1 : 0;
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      if (validity[static_cast<size_t>(i)] == 0) continue;
      values[static_cast<size_t>(i)] = CompareResult(op, cmp(i)) ? 1 : 0;
    }
  }
  return std::make_shared<BoolArray>(std::move(values), std::move(validity),
                                     nulls);
}

/// Row accessor that reads any numeric array as double.
std::function<double(int64_t)> AsDoubleAccessor(const Array& a) {
  if (a.type() == TypeId::kDouble) {
    const auto* d = AsDouble(a);
    return [d](int64_t i) { return d->Value(i); };
  }
  const auto* v = AsInt64(a);
  return [v](int64_t i) { return static_cast<double>(v->Value(i)); };
}

}  // namespace

// ---------------------------------------------------------------- gather

Result<ArrayPtr> Take(const ArrayPtr& array, const SelectionVector& indices) {
  for (int64_t idx : indices) {
    if (idx < 0 || idx >= array->length()) {
      return Status::OutOfRange(
          StrCat("take index ", idx, " out of range [0, ", array->length(),
                 ")"));
    }
  }
  // Typed fast paths keep Take linear without boxing.
  switch (array->type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      const auto* src = AsInt64(*array);
      Int64Builder builder(array->type());
      builder.Reserve(indices.size());
      for (int64_t idx : indices) {
        if (src->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(src->Value(idx));
        }
      }
      return builder.Finish();
    }
    case TypeId::kDouble: {
      const auto* src = AsDouble(*array);
      DoubleBuilder builder;
      builder.Reserve(indices.size());
      for (int64_t idx : indices) {
        if (src->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(src->Value(idx));
        }
      }
      return builder.Finish();
    }
    case TypeId::kBool: {
      const auto* src = AsBool(*array);
      BoolBuilder builder;
      for (int64_t idx : indices) {
        if (src->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(src->Value(idx));
        }
      }
      return builder.Finish();
    }
    case TypeId::kString: {
      const auto* src = AsString(*array);
      StringBuilder builder;
      size_t bytes = 0;
      for (int64_t idx : indices) bytes += src->Value(idx).size();
      builder.Reserve(indices.size(), bytes);
      for (int64_t idx : indices) {
        if (src->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(src->Value(idx));
        }
      }
      return builder.Finish();
    }
  }
  return Status::Internal("unhandled type in Take");
}

Result<ArrayPtr> TakeAllowNull(const ArrayPtr& array,
                               const SelectionVector& indices) {
  for (int64_t idx : indices) {
    if (idx < -1 || idx >= array->length()) {
      return Status::OutOfRange(
          StrCat("take index ", idx, " out of range [-1, ", array->length(),
                 ")"));
    }
  }
  auto builder = MakeBuilder(array->type());
  switch (array->type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      const auto* src = AsInt64(*array);
      auto* out = static_cast<Int64Builder*>(builder.get());
      out->Reserve(indices.size());
      for (int64_t idx : indices) {
        if (idx < 0 || src->IsNull(idx)) {
          out->AppendNull();
        } else {
          out->Append(src->Value(idx));
        }
      }
      break;
    }
    case TypeId::kDouble: {
      const auto* src = AsDouble(*array);
      auto* out = static_cast<DoubleBuilder*>(builder.get());
      out->Reserve(indices.size());
      for (int64_t idx : indices) {
        if (idx < 0 || src->IsNull(idx)) {
          out->AppendNull();
        } else {
          out->Append(src->Value(idx));
        }
      }
      break;
    }
    case TypeId::kBool: {
      const auto* src = AsBool(*array);
      auto* out = static_cast<BoolBuilder*>(builder.get());
      for (int64_t idx : indices) {
        if (idx < 0 || src->IsNull(idx)) {
          out->AppendNull();
        } else {
          out->Append(src->Value(idx));
        }
      }
      break;
    }
    case TypeId::kString: {
      const auto* src = AsString(*array);
      auto* out = static_cast<StringBuilder*>(builder.get());
      size_t bytes = 0;
      for (int64_t idx : indices) {
        if (idx >= 0) bytes += src->Value(idx).size();
      }
      out->Reserve(indices.size(), bytes);
      for (int64_t idx : indices) {
        if (idx < 0 || src->IsNull(idx)) {
          out->AppendNull();
        } else {
          out->Append(src->Value(idx));
        }
      }
      break;
    }
  }
  return builder->Finish();
}

Result<Table> TakeTable(const Table& table, const SelectionVector& indices) {
  std::vector<ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, Take(table.column(c), indices));
    columns.push_back(std::move(col));
  }
  return Table::Make(table.schema(), std::move(columns));
}

SelectionVector MaskToSelection(const BoolArray& mask) {
  SelectionVector indices;
  MaskToSelectionInto(mask, &indices);
  return indices;
}

void MaskToSelectionInto(const BoolArray& mask, SelectionVector* indices) {
  indices->clear();
  for (int64_t i = 0; i < mask.length(); ++i) {
    if (!mask.IsNull(i) && mask.Value(i)) indices->push_back(i);
  }
}

Result<Table> FilterTable(const Table& table, const BoolArray& mask) {
  if (mask.length() != table.num_rows()) {
    return Status::InvalidArgument(
        StrCat("filter mask length ", mask.length(), " != table rows ",
               table.num_rows()));
  }
  return TakeTable(table, MaskToSelection(mask));
}

Result<ArrayPtr> SliceArray(const ArrayPtr& array, int64_t offset,
                            int64_t length) {
  if (offset < 0 || offset > array->length() || length < 0) {
    return Status::OutOfRange(StrCat("slice [", offset, ", +", length,
                                     ") out of range [0, ", array->length(),
                                     "]"));
  }
  // Clamp before adding: `offset + length` can overflow int64 (UB) when
  // a caller passes a huge length such as an unbounded LIMIT.
  int64_t end = length > array->length() - offset ? array->length()
                                                  : offset + length;
  size_t lo = static_cast<size_t>(offset), hi = static_cast<size_t>(end);
  if (offset == 0 && end == array->length()) return array;  // whole array

  // Slice validity (empty = all valid) and recount nulls in the window.
  std::vector<uint8_t> validity;
  int64_t nulls = 0;
  if (array->null_count() > 0) {
    for (int64_t i = offset; i < end; ++i) {
      if (array->IsNull(i)) ++nulls;
    }
  }

  switch (array->type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      const auto& src = AsInt64(*array)->values();
      std::vector<int64_t> values(src.begin() + lo, src.begin() + hi);
      if (nulls > 0) {
        validity.reserve(hi - lo);
        for (int64_t i = offset; i < end; ++i) {
          validity.push_back(array->IsNull(i) ? 0 : 1);
        }
      }
      return std::make_shared<Int64Array>(std::move(values),
                                          std::move(validity), nulls,
                                          array->type());
    }
    case TypeId::kDouble: {
      const auto& src = AsDouble(*array)->values();
      std::vector<double> values(src.begin() + lo, src.begin() + hi);
      if (nulls > 0) {
        validity.reserve(hi - lo);
        for (int64_t i = offset; i < end; ++i) {
          validity.push_back(array->IsNull(i) ? 0 : 1);
        }
      }
      return std::make_shared<DoubleArray>(std::move(values),
                                           std::move(validity), nulls);
    }
    case TypeId::kBool: {
      const auto* src = AsBool(*array);
      std::vector<uint8_t> values;
      values.reserve(hi - lo);
      for (int64_t i = offset; i < end; ++i) {
        values.push_back(src->Value(i) ? 1 : 0);
      }
      if (nulls > 0) {
        validity.reserve(hi - lo);
        for (int64_t i = offset; i < end; ++i) {
          validity.push_back(array->IsNull(i) ? 0 : 1);
        }
      }
      return std::make_shared<BoolArray>(std::move(values),
                                         std::move(validity), nulls);
    }
    case TypeId::kString: {
      const auto* src = AsString(*array);
      const auto& offsets = src->offsets();
      std::vector<uint32_t> new_offsets;
      new_offsets.reserve(hi - lo + 1);
      std::string data;
      if (offsets.empty()) {
        new_offsets.push_back(0);
      } else {
        uint32_t base = offsets[lo];
        for (size_t i = lo; i <= hi; ++i) {
          new_offsets.push_back(offsets[i] - base);
        }
        data = src->data().substr(base, offsets[hi] - base);
      }
      if (nulls > 0) {
        validity.reserve(hi - lo);
        for (int64_t i = offset; i < end; ++i) {
          validity.push_back(array->IsNull(i) ? 0 : 1);
        }
      }
      return std::make_shared<StringArray>(std::move(data),
                                           std::move(new_offsets),
                                           std::move(validity), nulls);
    }
  }
  return Status::Internal("unhandled type in SliceArray");
}

Result<ArrayPtr> ConcatArrays(const std::vector<ArrayPtr>& arrays) {
  if (arrays.empty()) {
    return Status::InvalidArgument("cannot concat zero arrays");
  }
  TypeId type = arrays[0]->type();
  int64_t total = 0, nulls = 0;
  for (const ArrayPtr& a : arrays) {
    if (a->type() != type) {
      return Status::InvalidArgument(
          StrCat("cannot concat ", TypeIdToString(type), " with ",
                 TypeIdToString(a->type())));
    }
    total += a->length();
    nulls += a->null_count();
  }
  if (arrays.size() == 1) return arrays[0];

  std::vector<uint8_t> validity;
  if (nulls > 0) {
    validity.reserve(static_cast<size_t>(total));
    for (const ArrayPtr& a : arrays) {
      for (int64_t i = 0; i < a->length(); ++i) {
        validity.push_back(a->IsNull(i) ? 0 : 1);
      }
    }
  }
  switch (type) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      std::vector<int64_t> values;
      values.reserve(static_cast<size_t>(total));
      for (const ArrayPtr& a : arrays) {
        const auto& src = AsInt64(*a)->values();
        values.insert(values.end(), src.begin(), src.end());
      }
      return std::make_shared<Int64Array>(std::move(values),
                                          std::move(validity), nulls, type);
    }
    case TypeId::kDouble: {
      std::vector<double> values;
      values.reserve(static_cast<size_t>(total));
      for (const ArrayPtr& a : arrays) {
        const auto& src = AsDouble(*a)->values();
        values.insert(values.end(), src.begin(), src.end());
      }
      return std::make_shared<DoubleArray>(std::move(values),
                                           std::move(validity), nulls);
    }
    case TypeId::kBool: {
      std::vector<uint8_t> values;
      values.reserve(static_cast<size_t>(total));
      for (const ArrayPtr& a : arrays) {
        const auto* src = AsBool(*a);
        for (int64_t i = 0; i < src->length(); ++i) {
          values.push_back(src->Value(i) ? 1 : 0);
        }
      }
      return std::make_shared<BoolArray>(std::move(values),
                                         std::move(validity), nulls);
    }
    case TypeId::kString: {
      std::string data;
      std::vector<uint32_t> offsets;
      offsets.reserve(static_cast<size_t>(total) + 1);
      offsets.push_back(0);
      for (const ArrayPtr& a : arrays) {
        const auto* src = AsString(*a);
        uint32_t base = static_cast<uint32_t>(data.size());
        data.append(src->data());
        const auto& src_offsets = src->offsets();
        for (size_t i = 1; i < src_offsets.size(); ++i) {
          offsets.push_back(base + src_offsets[i]);
        }
      }
      return std::make_shared<StringArray>(std::move(data),
                                           std::move(offsets),
                                           std::move(validity), nulls);
    }
  }
  return Status::Internal("unhandled type in ConcatArrays");
}

Result<Table> ConcatTables(const std::vector<Table>& tables) {
  if (tables.empty()) {
    return Status::InvalidArgument("cannot concat zero tables");
  }
  const Schema& schema = tables[0].schema();
  for (const Table& t : tables) {
    if (!(t.schema() == schema)) {
      return Status::InvalidArgument(
          "cannot concat tables with different schemas");
    }
  }
  if (tables.size() == 1) return tables[0];
  std::vector<ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(schema.num_fields()));
  for (int c = 0; c < schema.num_fields(); ++c) {
    std::vector<ArrayPtr> parts;
    parts.reserve(tables.size());
    for (const Table& t : tables) parts.push_back(t.column(c));
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, ConcatArrays(parts));
    columns.push_back(std::move(col));
  }
  return Table::Make(schema, std::move(columns));
}

Result<Table> SliceTable(const Table& table, int64_t offset, int64_t length) {
  if (offset < 0 || offset > table.num_rows()) {
    return Status::OutOfRange(StrCat("slice offset ", offset,
                                     " out of range [0, ", table.num_rows(),
                                     "]"));
  }
  std::vector<ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col,
                             SliceArray(table.column(c), offset, length));
    columns.push_back(std::move(col));
  }
  return Table::Make(table.schema(), std::move(columns));
}

ArrayPtr MakeConstantArray(const Value& v, int64_t n) {
  size_t count = static_cast<size_t>(n);
  if (v.is_null()) {
    return std::make_shared<Int64Array>(std::vector<int64_t>(count, 0),
                                        std::vector<uint8_t>(count, 0), n);
  }
  switch (v.type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return std::make_shared<Int64Array>(
          std::vector<int64_t>(count, v.int64_value()),
          std::vector<uint8_t>(), 0, v.type());
    case TypeId::kDouble:
      return std::make_shared<DoubleArray>(
          std::vector<double>(count, v.double_value()),
          std::vector<uint8_t>(), 0);
    case TypeId::kBool:
      return std::make_shared<BoolArray>(
          std::vector<uint8_t>(count, v.bool_value() ? 1 : 0),
          std::vector<uint8_t>(), 0);
    case TypeId::kString: {
      const std::string& s = v.string_value();
      std::string data;
      data.reserve(count * s.size());
      std::vector<uint32_t> offsets;
      offsets.reserve(count + 1);
      offsets.push_back(0);
      for (size_t i = 0; i < count; ++i) {
        data.append(s);
        offsets.push_back(static_cast<uint32_t>(data.size()));
      }
      return std::make_shared<StringArray>(std::move(data),
                                           std::move(offsets),
                                           std::vector<uint8_t>(), 0);
    }
  }
  return nullptr;  // unreachable
}

// ---------------------------------------------------- elementwise kernels

Result<ArrayPtr> CompareArrays(CompareOp op, const Array& left,
                               const Array& right) {
  if (left.length() != right.length()) {
    return Status::InvalidArgument(
        StrCat("compare length mismatch: ", left.length(), " vs ",
               right.length()));
  }
  TypeId lt = left.type(), rt = right.type();
  if (IsInt64Backed(lt) && IsInt64Backed(rt)) {
    const auto* l = AsInt64(left);
    const auto* r = AsInt64(right);
    return CompareLoop(op, left, right, [l, r](int64_t i) {
      return CompareInt64(l->Value(i), r->Value(i));
    });
  }
  if (IsNumeric(lt) && IsNumeric(rt)) {
    auto l = AsDoubleAccessor(left);
    auto r = AsDoubleAccessor(right);
    return CompareLoop(op, left, right, [l, r](int64_t i) {
      return CompareDouble(l(i), r(i));
    });
  }
  if (lt == TypeId::kString && rt == TypeId::kString) {
    const auto* l = AsString(left);
    const auto* r = AsString(right);
    return CompareLoop(op, left, right, [l, r](int64_t i) {
      int c = l->Value(i).compare(r->Value(i));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    });
  }
  if (lt == TypeId::kBool && rt == TypeId::kBool) {
    const auto* l = AsBool(left);
    const auto* r = AsBool(right);
    return CompareLoop(op, left, right, [l, r](int64_t i) {
      return CompareInt64(l->Value(i) ? 1 : 0, r->Value(i) ? 1 : 0);
    });
  }
  return Status::InvalidArgument(StrCat("cannot compare ",
                                        TypeIdToString(lt), " with ",
                                        TypeIdToString(rt)));
}

Result<ArrayPtr> ArithmeticArrays(ArithOp op, const Array& left,
                                  const Array& right) {
  if (left.length() != right.length()) {
    return Status::InvalidArgument(
        StrCat("arithmetic length mismatch: ", left.length(), " vs ",
               right.length()));
  }
  if (!IsNumeric(left.type()) || !IsNumeric(right.type())) {
    return Status::InvalidArgument(
        StrCat("arithmetic needs numeric operands, got ",
               TypeIdToString(left.type()), " and ",
               TypeIdToString(right.type())));
  }
  int64_t n = left.length();
  bool as_double = op == ArithOp::kDiv || left.type() == TypeId::kDouble ||
                   right.type() == TypeId::kDouble;
  int64_t nulls = 0;
  std::vector<uint8_t> validity = CombinedValidity(left, right, &nulls);

  if (as_double) {
    auto l = AsDoubleAccessor(left);
    auto r = AsDoubleAccessor(right);
    std::vector<double> values(static_cast<size_t>(n), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      if (!validity.empty() && validity[static_cast<size_t>(i)] == 0) {
        continue;
      }
      double a = l(i), b = r(i);
      double v = 0;
      switch (op) {
        case ArithOp::kAdd:
          v = a + b;
          break;
        case ArithOp::kSub:
          v = a - b;
          break;
        case ArithOp::kMul:
          v = a * b;
          break;
        case ArithOp::kDiv:
        case ArithOp::kMod:
          if (b == 0) {  // SQL: division by zero -> null (lenient)
            if (validity.empty()) {
              validity.assign(static_cast<size_t>(n), 1);
              // Rows before i were valid; keep their flags.
            }
            validity[static_cast<size_t>(i)] = 0;
            ++nulls;
            continue;
          }
          v = op == ArithOp::kDiv ? a / b : std::fmod(a, b);
          break;
      }
      values[static_cast<size_t>(i)] = v;
    }
    return std::make_shared<DoubleArray>(std::move(values),
                                         std::move(validity), nulls);
  }

  const auto* l = AsInt64(left);
  const auto* r = AsInt64(right);
  std::vector<int64_t> values(static_cast<size_t>(n), 0);
  for (int64_t i = 0; i < n; ++i) {
    if (!validity.empty() && validity[static_cast<size_t>(i)] == 0) continue;
    int64_t a = l->Value(i), b = r->Value(i);
    int64_t v = 0;
    switch (op) {
      case ArithOp::kAdd:
        v = a + b;
        break;
      case ArithOp::kSub:
        v = a - b;
        break;
      case ArithOp::kMul:
        v = a * b;
        break;
      case ArithOp::kMod:
        if (b == 0) {
          if (validity.empty()) validity.assign(static_cast<size_t>(n), 1);
          validity[static_cast<size_t>(i)] = 0;
          ++nulls;
          continue;
        }
        v = a % b;
        break;
      case ArithOp::kDiv:
        return Status::Internal("integer division reaches the double path");
    }
    values[static_cast<size_t>(i)] = v;
  }
  return std::make_shared<Int64Array>(std::move(values), std::move(validity),
                                      nulls);
}

namespace {

Result<ArrayPtr> LogicalLoop(const Array& left, const Array& right,
                             bool is_and) {
  const auto* l = AsBool(left);
  const auto* r = AsBool(right);
  if (l == nullptr || r == nullptr) {
    return Status::InvalidArgument(
        StrCat(is_and ? "AND" : "OR", " needs boolean operands"));
  }
  if (left.length() != right.length()) {
    return Status::InvalidArgument(
        StrCat("logical length mismatch: ", left.length(), " vs ",
               right.length()));
  }
  int64_t n = left.length();
  std::vector<uint8_t> values(static_cast<size_t>(n), 0);
  std::vector<uint8_t> validity;
  int64_t nulls = 0;
  bool any_null_inputs = left.null_count() > 0 || right.null_count() > 0;
  if (any_null_inputs) validity.assign(static_cast<size_t>(n), 1);
  for (int64_t i = 0; i < n; ++i) {
    bool ln = l->IsNull(i), rn = r->IsNull(i);
    bool lv = !ln && l->Value(i), rv = !rn && r->Value(i);
    size_t idx = static_cast<size_t>(i);
    if (is_and) {
      if ((!ln && !lv) || (!rn && !rv)) {
        values[idx] = 0;  // false AND x == false
      } else if (ln || rn) {
        validity[idx] = 0;
        ++nulls;
      } else {
        values[idx] = 1;
      }
    } else {
      if ((!ln && lv) || (!rn && rv)) {
        values[idx] = 1;  // true OR x == true
      } else if (ln || rn) {
        validity[idx] = 0;
        ++nulls;
      } else {
        values[idx] = 0;
      }
    }
  }
  if (nulls == 0) validity.clear();
  return std::make_shared<BoolArray>(std::move(values), std::move(validity),
                                     nulls);
}

}  // namespace

Result<ArrayPtr> AndArrays(const Array& left, const Array& right) {
  return LogicalLoop(left, right, /*is_and=*/true);
}

Result<ArrayPtr> OrArrays(const Array& left, const Array& right) {
  return LogicalLoop(left, right, /*is_and=*/false);
}

Result<ArrayPtr> NotArray(const Array& input) {
  const auto* b = AsBool(input);
  if (b == nullptr) {
    return Status::InvalidArgument("NOT needs a boolean operand");
  }
  int64_t n = input.length();
  std::vector<uint8_t> values(static_cast<size_t>(n), 0);
  std::vector<uint8_t> validity;
  int64_t nulls = input.null_count();
  if (nulls > 0) {
    validity.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      validity.push_back(input.IsNull(i) ? 0 : 1);
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    if (!input.IsNull(i)) {
      values[static_cast<size_t>(i)] = b->Value(i) ? 0 : 1;
    }
  }
  return std::make_shared<BoolArray>(std::move(values), std::move(validity),
                                     nulls);
}

// ----------------------------------------------------------- hash kernels

void HashArray(const Array& array, bool combine,
               std::vector<uint64_t>* hashes) {
  size_t n = static_cast<size_t>(array.length());
  if (!combine) hashes->assign(n, 0);
  auto mix = [combine, hashes](size_t i, uint64_t h) {
    (*hashes)[i] = combine ? HashCombine((*hashes)[i], h) : h;
  };
  switch (array.type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      const auto* a = AsInt64(array);
      for (size_t i = 0; i < n; ++i) {
        if (a->IsNull(static_cast<int64_t>(i))) {
          mix(i, kNullHash);
          continue;
        }
        int64_t v = a->Value(static_cast<int64_t>(i));
        mix(i, Fnv1a64(&v, sizeof(v)));
      }
      return;
    }
    case TypeId::kDouble: {
      const auto* a = AsDouble(array);
      for (size_t i = 0; i < n; ++i) {
        if (a->IsNull(static_cast<int64_t>(i))) {
          mix(i, kNullHash);
          continue;
        }
        double v = a->Value(static_cast<int64_t>(i));
        if (v == 0.0) v = 0.0;  // normalize -0.0
        mix(i, Fnv1a64(&v, sizeof(v)));
      }
      return;
    }
    case TypeId::kBool: {
      const auto* a = AsBool(array);
      for (size_t i = 0; i < n; ++i) {
        if (a->IsNull(static_cast<int64_t>(i))) {
          mix(i, kNullHash);
          continue;
        }
        mix(i, a->Value(static_cast<int64_t>(i)) ? 0x9E37ULL : 0x79B9ULL);
      }
      return;
    }
    case TypeId::kString: {
      const auto* a = AsString(array);
      for (size_t i = 0; i < n; ++i) {
        if (a->IsNull(static_cast<int64_t>(i))) {
          mix(i, kNullHash);
          continue;
        }
        mix(i, Fnv1a64(a->Value(static_cast<int64_t>(i))));
      }
      return;
    }
  }
}

namespace {

bool CellsEqual(const Array& a, int64_t ai, const Array& b, int64_t bi) {
  bool a_null = a.IsNull(ai), b_null = b.IsNull(bi);
  if (a_null || b_null) return a_null && b_null;
  TypeId at = a.type(), bt = b.type();
  if (IsInt64Backed(at) && IsInt64Backed(bt)) {
    return AsInt64(a)->Value(ai) == AsInt64(b)->Value(bi);
  }
  if (IsNumeric(at) && IsNumeric(bt)) {
    double x = at == TypeId::kDouble
                   ? AsDouble(a)->Value(ai)
                   : static_cast<double>(AsInt64(a)->Value(ai));
    double y = bt == TypeId::kDouble
                   ? AsDouble(b)->Value(bi)
                   : static_cast<double>(AsInt64(b)->Value(bi));
    return x == y;
  }
  if (at != bt) return false;
  switch (at) {
    case TypeId::kBool:
      return AsBool(a)->Value(ai) == AsBool(b)->Value(bi);
    case TypeId::kString:
      return AsString(a)->Value(ai) == AsString(b)->Value(bi);
    default:
      return false;
  }
}

}  // namespace

bool RowsEqual(const std::vector<ArrayPtr>& left, int64_t left_row,
               const std::vector<ArrayPtr>& right, int64_t right_row) {
  for (size_t c = 0; c < left.size(); ++c) {
    if (!CellsEqual(*left[c], left_row, *right[c], right_row)) return false;
  }
  return true;
}

// ---------------------------------------------------- canonical join keys

bool CanonicalKeyTypesCompatible(TypeId left, TypeId right) {
  if (IsInt64Backed(left) && IsInt64Backed(right)) return true;
  if (left != right) return false;
  return left == TypeId::kString || left == TypeId::kBool;
}

namespace {

/// Appends the canonical bytes of one cell. A null cell gets the length
/// prefix ~0 (no real string has length 2^64-1, and fixed-width cells
/// always append exactly their width, so nulls cannot collide with
/// values). Join callers screen null rows out beforehand; the tag only
/// keeps the encoding total.
void AppendCanonicalCell(const Array& arr, int64_t row, std::string* out) {
  if (arr.IsNull(row)) {
    uint64_t tag = ~uint64_t{0};
    out->append(reinterpret_cast<const char*>(&tag), sizeof(tag));
    return;
  }
  switch (arr.type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      int64_t v = AsInt64(arr)->Value(row);
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return;
    }
    case TypeId::kBool: {
      char v = AsBool(arr)->Value(row) ? 1 : 0;
      out->push_back(v);
      return;
    }
    case TypeId::kString: {
      std::string_view v = AsString(arr)->Value(row);
      uint64_t len = v.size();
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(v.data(), v.size());
      return;
    }
    case TypeId::kDouble: {
      // Unreachable by construction: CanonicalKeyTypesCompatible excludes
      // doubles. Encode the bits anyway so the function stays total.
      double v = AsDouble(arr)->Value(row);
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return;
    }
  }
}

}  // namespace

Status EncodeCanonicalKeys(const std::vector<ArrayPtr>& keys, int64_t begin,
                           int64_t end, std::vector<std::string>* out) {
  if (begin < 0 || end < begin) {
    return Status::InvalidArgument("EncodeCanonicalKeys: bad row range");
  }
  out->clear();
  out->resize(static_cast<size_t>(end - begin));
  for (const ArrayPtr& arr : keys) {
    if (arr->length() < end) {
      return Status::InvalidArgument(
          "EncodeCanonicalKeys: range exceeds key length");
    }
    for (int64_t r = begin; r < end; ++r) {
      AppendCanonicalCell(*arr, r, &(*out)[static_cast<size_t>(r - begin)]);
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------ sort kernels

namespace {

/// Three-way row comparator for one key column; nulls order first.
std::function<int(int64_t, int64_t)> MakeColumnComparator(
    const ArrayPtr& array) {
  const Array* a = array.get();
  auto with_nulls = [a](auto typed_cmp) {
    return [a, typed_cmp](int64_t x, int64_t y) {
      bool xn = a->IsNull(x), yn = a->IsNull(y);
      if (xn || yn) return xn == yn ? 0 : (xn ? -1 : 1);
      return typed_cmp(x, y);
    };
  };
  switch (array->type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      const auto* v = AsInt64(*array);
      return with_nulls([v](int64_t x, int64_t y) {
        return CompareInt64(v->Value(x), v->Value(y));
      });
    }
    case TypeId::kDouble: {
      const auto* v = AsDouble(*array);
      return with_nulls([v](int64_t x, int64_t y) {
        return CompareDouble(v->Value(x), v->Value(y));
      });
    }
    case TypeId::kBool: {
      const auto* v = AsBool(*array);
      return with_nulls([v](int64_t x, int64_t y) {
        return CompareInt64(v->Value(x) ? 1 : 0, v->Value(y) ? 1 : 0);
      });
    }
    case TypeId::kString: {
      const auto* v = AsString(*array);
      return with_nulls([v](int64_t x, int64_t y) {
        int c = v->Value(x).compare(v->Value(y));
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
      });
    }
  }
  return nullptr;
}

}  // namespace

Result<SelectionVector> SortIndices(const std::vector<SortKeySpec>& keys,
                                    int64_t limit) {
  if (keys.empty()) {
    return Status::InvalidArgument("SortIndices needs at least one key");
  }
  int64_t n = keys[0].array->length();
  struct KeyCmp {
    std::function<int(int64_t, int64_t)> cmp;
    bool ascending;
  };
  std::vector<KeyCmp> comparators;
  comparators.reserve(keys.size());
  for (const SortKeySpec& key : keys) {
    if (key.array->length() != n) {
      return Status::InvalidArgument("sort key length mismatch");
    }
    comparators.push_back({MakeColumnComparator(key.array), key.ascending});
  }
  SelectionVector indices(static_cast<size_t>(n));
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }
  // Final index tie-break makes this a total order, so plain sort (and
  // partial_sort for top-N) reproduce exactly what a stable sort would.
  auto less = [&comparators](int64_t x, int64_t y) {
    for (const KeyCmp& k : comparators) {
      int c = k.cmp(x, y);
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return x < y;
  };
  if (limit >= 0 && limit < n) {
    std::partial_sort(indices.begin(),
                      indices.begin() + static_cast<size_t>(limit),
                      indices.end(), less);
    indices.resize(static_cast<size_t>(limit));
  } else {
    std::sort(indices.begin(), indices.end(), less);
  }
  return indices;
}

Result<SelectionVector> MergeSortedRuns(
    const std::vector<SortKeySpec>& keys,
    const std::vector<SelectionVector>& runs, int64_t limit) {
  if (keys.empty()) {
    return Status::InvalidArgument("MergeSortedRuns needs at least one key");
  }
  struct KeyCmp {
    std::function<int(int64_t, int64_t)> cmp;
    bool ascending;
  };
  std::vector<KeyCmp> comparators;
  comparators.reserve(keys.size());
  int64_t n = keys[0].array->length();
  for (const SortKeySpec& key : keys) {
    if (key.array->length() != n) {
      return Status::InvalidArgument("sort key length mismatch");
    }
    comparators.push_back({MakeColumnComparator(key.array), key.ascending});
  }
  // SortIndices' total order is (keys..., global index). Each input run is
  // sorted under that order, so a k-way merge with the same comparator
  // yields exactly the sequence SortIndices would produce over the union —
  // for any decomposition into sorted runs, not just contiguous slices.
  // With contiguous ascending runs the index tie-break also coincides with
  // the documented lowest-run-index rule.
  auto less = [&comparators](int64_t x, int64_t y) {
    for (const KeyCmp& k : comparators) {
      int c = k.cmp(x, y);
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return x < y;
  };
  int64_t total = 0;
  for (const SelectionVector& run : runs) {
    total += static_cast<int64_t>(run.size());
  }
  if (limit >= 0 && limit < total) total = limit;
  SelectionVector out;
  out.reserve(static_cast<size_t>(total));
  // Heap entry: (current index value, run id). std::make_heap is a max-heap,
  // so invert `less`.
  struct Head {
    int64_t index;
    size_t run;
  };
  std::vector<size_t> cursor(runs.size(), 0);
  std::vector<Head> heap;
  heap.reserve(runs.size());
  auto heap_greater = [&less](const Head& a, const Head& b) {
    return less(b.index, a.index);
  };
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push_back({runs[r][0], r});
  }
  std::make_heap(heap.begin(), heap.end(), heap_greater);
  while (!heap.empty() && static_cast<int64_t>(out.size()) < total) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    Head head = heap.back();
    heap.pop_back();
    out.push_back(head.index);
    size_t next = ++cursor[head.run];
    if (next < runs[head.run].size()) {
      heap.push_back({runs[head.run][next], head.run});
      std::push_heap(heap.begin(), heap.end(), heap_greater);
    }
  }
  return out;
}

int64_t SortExtremeRow(const SortKeySpec& key, int64_t begin, int64_t end) {
  if (begin >= end || begin < 0 || end > key.array->length()) return -1;
  auto cmp = MakeColumnComparator(key.array);
  int64_t best = begin;
  for (int64_t r = begin + 1; r < end; ++r) {
    int c = cmp(r, best);
    if (key.ascending ? c < 0 : c > 0) best = r;
  }
  return best;
}

// -------------------------------------------------------------- statistics

ColumnStats ComputeStats(const Array& array) {
  ColumnStats stats;
  stats.value_count = array.length();
  stats.null_count = array.null_count();
  bool seen = false;
  for (int64_t i = 0; i < array.length(); ++i) {
    if (array.IsNull(i)) continue;
    Value v = array.GetValue(i);
    if (!seen) {
      stats.min = v;
      stats.max = v;
      seen = true;
      continue;
    }
    if (v.Compare(stats.min) < 0) stats.min = v;
    if (v.Compare(stats.max) > 0) stats.max = std::move(v);
  }
  return stats;
}

}  // namespace bauplan::columnar
