#include "columnar/compute.h"

#include "columnar/builder.h"
#include "common/strings.h"

namespace bauplan::columnar {

Result<ArrayPtr> Take(const ArrayPtr& array,
                      const std::vector<int64_t>& indices) {
  for (int64_t idx : indices) {
    if (idx < 0 || idx >= array->length()) {
      return Status::OutOfRange(
          StrCat("take index ", idx, " out of range [0, ", array->length(),
                 ")"));
    }
  }
  // Typed fast paths keep Take linear without boxing.
  switch (array->type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      const auto* src = AsInt64(*array);
      Int64Builder builder(array->type());
      builder.Reserve(indices.size());
      for (int64_t idx : indices) {
        if (src->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(src->Value(idx));
        }
      }
      return builder.Finish();
    }
    case TypeId::kDouble: {
      const auto* src = AsDouble(*array);
      DoubleBuilder builder;
      builder.Reserve(indices.size());
      for (int64_t idx : indices) {
        if (src->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(src->Value(idx));
        }
      }
      return builder.Finish();
    }
    case TypeId::kBool: {
      const auto* src = AsBool(*array);
      BoolBuilder builder;
      for (int64_t idx : indices) {
        if (src->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(src->Value(idx));
        }
      }
      return builder.Finish();
    }
    case TypeId::kString: {
      const auto* src = AsString(*array);
      StringBuilder builder;
      for (int64_t idx : indices) {
        if (src->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(src->Value(idx));
        }
      }
      return builder.Finish();
    }
  }
  return Status::Internal("unhandled type in Take");
}

Result<Table> TakeTable(const Table& table,
                        const std::vector<int64_t>& indices) {
  std::vector<ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, Take(table.column(c), indices));
    columns.push_back(std::move(col));
  }
  return Table::Make(table.schema(), std::move(columns));
}

Result<Table> FilterTable(const Table& table, const BoolArray& mask) {
  if (mask.length() != table.num_rows()) {
    return Status::InvalidArgument(
        StrCat("filter mask length ", mask.length(), " != table rows ",
               table.num_rows()));
  }
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < mask.length(); ++i) {
    if (!mask.IsNull(i) && mask.Value(i)) indices.push_back(i);
  }
  return TakeTable(table, indices);
}

Result<Table> ConcatTables(const std::vector<Table>& tables) {
  if (tables.empty()) {
    return Status::InvalidArgument("cannot concat zero tables");
  }
  const Schema& schema = tables[0].schema();
  for (const Table& t : tables) {
    if (!(t.schema() == schema)) {
      return Status::InvalidArgument(
          "cannot concat tables with different schemas");
    }
  }
  std::vector<ArrayPtr> columns;
  for (int c = 0; c < schema.num_fields(); ++c) {
    auto builder = MakeBuilder(schema.field(c).type);
    for (const Table& t : tables) {
      const ArrayPtr& col = t.column(c);
      for (int64_t i = 0; i < col->length(); ++i) {
        BAUPLAN_RETURN_NOT_OK(builder->AppendValue(col->GetValue(i)));
      }
    }
    columns.push_back(builder->Finish());
  }
  return Table::Make(schema, std::move(columns));
}

Result<Table> SliceTable(const Table& table, int64_t offset, int64_t length) {
  if (offset < 0 || offset > table.num_rows()) {
    return Status::OutOfRange(StrCat("slice offset ", offset,
                                     " out of range [0, ", table.num_rows(),
                                     "]"));
  }
  int64_t end = std::min(offset + length, table.num_rows());
  std::vector<int64_t> indices;
  indices.reserve(static_cast<size_t>(end - offset));
  for (int64_t i = offset; i < end; ++i) indices.push_back(i);
  return TakeTable(table, indices);
}

ColumnStats ComputeStats(const Array& array) {
  ColumnStats stats;
  stats.value_count = array.length();
  stats.null_count = array.null_count();
  bool seen = false;
  for (int64_t i = 0; i < array.length(); ++i) {
    if (array.IsNull(i)) continue;
    Value v = array.GetValue(i);
    if (!seen) {
      stats.min = v;
      stats.max = v;
      seen = true;
      continue;
    }
    if (v.Compare(stats.min) < 0) stats.min = v;
    if (v.Compare(stats.max) > 0) stats.max = std::move(v);
  }
  return stats;
}

}  // namespace bauplan::columnar
