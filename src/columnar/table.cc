#include "columnar/table.h"

#include <algorithm>

#include "common/strings.h"

namespace bauplan::columnar {

Result<Table> Table::Make(Schema schema, std::vector<ArrayPtr> columns) {
  if (static_cast<size_t>(schema.num_fields()) != columns.size()) {
    return Status::InvalidArgument(
        StrCat("schema has ", schema.num_fields(), " fields but ",
               columns.size(), " columns given"));
  }
  int64_t rows = columns.empty() ? 0 : columns[0]->length();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr) {
      return Status::InvalidArgument("null column pointer");
    }
    if (columns[i]->length() != rows) {
      return Status::InvalidArgument(
          StrCat("column '", schema.field(static_cast<int>(i)).name,
                 "' has length ", columns[i]->length(), ", expected ", rows));
    }
    if (columns[i]->type() != schema.field(static_cast<int>(i)).type) {
      return Status::InvalidArgument(
          StrCat("column '", schema.field(static_cast<int>(i)).name,
                 "' has type ", TypeIdToString(columns[i]->type()),
                 ", schema says ",
                 TypeIdToString(schema.field(static_cast<int>(i)).type)));
    }
  }
  return Table(std::move(schema), std::move(columns), rows);
}

Result<ArrayPtr> Table::GetColumnByName(std::string_view name) const {
  int idx = schema_.GetFieldIndex(name);
  if (idx < 0) {
    return Status::NotFound(StrCat("no column named '", name, "'"));
  }
  return columns_[static_cast<size_t>(idx)];
}

Result<Table> Table::SelectColumns(
    const std::vector<std::string>& names) const {
  BAUPLAN_ASSIGN_OR_RETURN(Schema schema, schema_.Select(names));
  std::vector<ArrayPtr> columns;
  columns.reserve(names.size());
  for (const auto& name : names) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, GetColumnByName(name));
    columns.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

Result<Table> Table::AddColumn(const Field& field, ArrayPtr column) const {
  if (column->length() != num_rows_) {
    return Status::InvalidArgument(
        StrCat("new column length ", column->length(), " != table rows ",
               num_rows_));
  }
  BAUPLAN_ASSIGN_OR_RETURN(Schema schema, schema_.AddField(field));
  std::vector<ArrayPtr> columns = columns_;
  columns.push_back(std::move(column));
  return Table::Make(std::move(schema), std::move(columns));
}

int64_t Table::EstimatedBytes() const {
  int64_t total = 0;
  for (const auto& col : columns_) {
    switch (col->type()) {
      case TypeId::kBool:
        total += col->length();
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
      case TypeId::kDouble:
        total += col->length() * 8;
        break;
      case TypeId::kString: {
        const auto* s = AsString(*col);
        total += static_cast<int64_t>(s->data().size()) +
                 static_cast<int64_t>(s->offsets().size()) * 4;
        break;
      }
    }
    if (col->null_count() > 0) total += col->length();
  }
  return total;
}

std::string Table::ToString(int64_t max_rows) const {
  int64_t rows = std::min(num_rows_, max_rows);
  int ncols = num_columns();
  std::vector<std::vector<std::string>> cells(
      static_cast<size_t>(rows) + 1, std::vector<std::string>(ncols));
  std::vector<size_t> widths(static_cast<size_t>(ncols), 0);
  for (int c = 0; c < ncols; ++c) {
    cells[0][static_cast<size_t>(c)] = schema_.field(c).name;
    widths[static_cast<size_t>(c)] = schema_.field(c).name.size();
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int c = 0; c < ncols; ++c) {
      std::string text = GetValue(r, c).ToString();
      widths[static_cast<size_t>(c)] =
          std::max(widths[static_cast<size_t>(c)], text.size());
      cells[static_cast<size_t>(r) + 1][static_cast<size_t>(c)] =
          std::move(text);
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (int c = 0; c < ncols; ++c) {
      const std::string& text = cells[r][static_cast<size_t>(c)];
      out += text;
      out.append(widths[static_cast<size_t>(c)] - text.size() + 2, ' ');
    }
    out += '\n';
    if (r == 0) {
      for (int c = 0; c < ncols; ++c) {
        out.append(widths[static_cast<size_t>(c)], '-');
        out.append(2, ' ');
      }
      out += '\n';
    }
  }
  if (rows < num_rows_) {
    out += StrCat("... (", num_rows_ - rows, " more rows)\n");
  }
  return out;
}

}  // namespace bauplan::columnar
