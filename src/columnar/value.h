#ifndef BAUPLAN_COLUMNAR_VALUE_H_
#define BAUPLAN_COLUMNAR_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "columnar/type.h"
#include "common/bytes.h"
#include "common/result.h"

namespace bauplan::columnar {

/// A single (possibly null) scalar: SQL literals, column min/max statistics,
/// partition values and aggregate states all flow through Value.
class Value {
 public:
  /// Constructs a null of unspecified type.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value Timestamp(int64_t micros);

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }

  /// The dynamic type; null values report kInt64 by convention (callers
  /// should check is_null() first).
  TypeId type() const;

  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int64_value() const;
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }

  /// Numeric view of the value (int64/timestamp widened to double);
  /// InvalidArgument for strings/bools/nulls.
  Result<double> AsDouble() const;

  /// Three-way comparison for same-type values (null sorts first).
  /// Numeric types compare across int64/double/timestamp.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  uint64_t Hash() const;
  std::string ToString() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Value> Deserialize(BinaryReader* reader);

 private:
  struct TimestampTag {
    int64_t micros;
    bool operator==(const TimestampTag& o) const { return micros == o.micros; }
  };
  using Repr =
      std::variant<std::monostate, bool, int64_t, double, std::string,
                   TimestampTag>;

  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

}  // namespace bauplan::columnar

#endif  // BAUPLAN_COLUMNAR_VALUE_H_
