#include "columnar/datetime.h"

#include <cstdio>
#include <ctime>

#include "common/strings.h"

namespace bauplan::columnar {

Result<int64_t> ParseTimestampString(std::string_view text) {
  int year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  std::string s(StripWhitespace(text));
  // Accept the ISO 'T' separator by normalizing it to a space.
  if (s.size() > 10 && s[10] == 'T') s[10] = ' ';
  int consumed = 0;
  int matched = std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d%n", &year, &month,
                            &day, &hour, &minute, &second, &consumed);
  if (matched == 3) {
    consumed = 0;
    std::sscanf(s.c_str(), "%d-%d-%d%n", &year, &month, &day, &consumed);
  }
  if ((matched != 3 && matched != 6) ||
      static_cast<size_t>(consumed) != s.size()) {
    return Status::InvalidArgument(
        StrCat("cannot parse timestamp from '", text, "'"));
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour < 0 ||
      hour > 23 || minute < 0 || minute > 59 || second < 0 || second > 60) {
    return Status::InvalidArgument(
        StrCat("timestamp components out of range in '", text, "'"));
  }
  std::tm tm_utc = {};
  tm_utc.tm_year = year - 1900;
  tm_utc.tm_mon = month - 1;
  tm_utc.tm_mday = day;
  tm_utc.tm_hour = hour;
  tm_utc.tm_min = minute;
  tm_utc.tm_sec = second;
  std::time_t secs = timegm(&tm_utc);
  return static_cast<int64_t>(secs) * 1000000;
}

std::string FormatTimestampString(int64_t epoch_micros) {
  std::time_t secs = static_cast<std::time_t>(epoch_micros / 1000000);
  if (epoch_micros < 0 && epoch_micros % 1000000 != 0) secs -= 1;
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[48];
  if (tm_utc.tm_hour == 0 && tm_utc.tm_min == 0 && tm_utc.tm_sec == 0) {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", tm_utc.tm_year + 1900,
                  tm_utc.tm_mon + 1, tm_utc.tm_mday);
  } else {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                  tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                  tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec);
  }
  return buf;
}

}  // namespace bauplan::columnar
