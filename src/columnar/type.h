#ifndef BAUPLAN_COLUMNAR_TYPE_H_
#define BAUPLAN_COLUMNAR_TYPE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace bauplan::columnar {

/// Physical/logical type of a column. Timestamps are microseconds since the
/// Unix epoch, stored as int64.
enum class TypeId : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kTimestamp = 4,
};

/// Canonical lowercase name ("int64", "timestamp", ...).
std::string_view TypeIdToString(TypeId id);

/// Parses a canonical type name; InvalidArgument on unknown names.
Result<TypeId> TypeIdFromString(std::string_view name);

/// True for types whose values order and aggregate numerically.
inline bool IsNumeric(TypeId id) {
  return id == TypeId::kInt64 || id == TypeId::kDouble ||
         id == TypeId::kTimestamp;
}

/// One named, typed, optionally-nullable column in a schema.
struct Field {
  std::string name;
  TypeId type = TypeId::kInt64;
  bool nullable = true;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }

  std::string ToString() const;
};

/// Ordered collection of fields describing a table's columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1 if absent.
  int GetFieldIndex(std::string_view name) const;

  /// The field named `name`; NotFound if absent.
  Result<Field> GetFieldByName(std::string_view name) const;

  bool HasField(std::string_view name) const {
    return GetFieldIndex(name) >= 0;
  }

  /// Returns a copy with `field` appended; AlreadyExists if the name is
  /// taken.
  Result<Schema> AddField(const Field& field) const;

  /// Returns a copy without the named field; NotFound if absent.
  Result<Schema> RemoveField(std::string_view name) const;

  /// Returns a copy containing only `names`, in the given order.
  Result<Schema> Select(const std::vector<std::string>& names) const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  std::string ToString() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Schema> Deserialize(BinaryReader* reader);

 private:
  std::vector<Field> fields_;
};

}  // namespace bauplan::columnar

#endif  // BAUPLAN_COLUMNAR_TYPE_H_
