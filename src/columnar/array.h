#ifndef BAUPLAN_COLUMNAR_ARRAY_H_
#define BAUPLAN_COLUMNAR_ARRAY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/type.h"
#include "columnar/value.h"

namespace bauplan::columnar {

/// Immutable, fully-materialized column of values with per-row validity.
/// Arrays are produced by builders (builder.h) or compute kernels
/// (compute.h) and shared by pointer; they are never mutated in place.
class Array {
 public:
  virtual ~Array() = default;

  Array(const Array&) = delete;
  Array& operator=(const Array&) = delete;

  TypeId type() const { return type_; }
  int64_t length() const { return length_; }
  int64_t null_count() const { return null_count_; }

  /// True when row `i` is null. Arrays with no nulls keep an empty validity
  /// vector, so the hot path is a single branch.
  bool IsNull(int64_t i) const {
    return !validity_.empty() && validity_[static_cast<size_t>(i)] == 0;
  }

  /// Boxes row `i` as a Value (null-aware). Convenient but slow; hot loops
  /// should downcast and use the typed accessors.
  virtual Value GetValue(int64_t i) const = 0;

 protected:
  Array(TypeId type, int64_t length, std::vector<uint8_t> validity,
        int64_t null_count)
      : type_(type),
        length_(length),
        validity_(std::move(validity)),
        null_count_(null_count) {}

  TypeId type_;
  int64_t length_;
  /// One byte per row, 1 = valid; empty means all-valid.
  std::vector<uint8_t> validity_;
  int64_t null_count_;
};

using ArrayPtr = std::shared_ptr<Array>;

/// Column of int64 values; also backs timestamp columns (type() reports
/// kTimestamp, values are epoch-microseconds).
class Int64Array : public Array {
 public:
  Int64Array(std::vector<int64_t> values, std::vector<uint8_t> validity,
             int64_t null_count, TypeId type = TypeId::kInt64)
      : Array(type, static_cast<int64_t>(values.size()), std::move(validity),
              null_count),
        values_(std::move(values)) {}

  int64_t Value(int64_t i) const { return values_[static_cast<size_t>(i)]; }
  const std::vector<int64_t>& values() const { return values_; }

  columnar::Value GetValue(int64_t i) const override {
    if (IsNull(i)) return Value::Null();
    if (type_ == TypeId::kTimestamp) return Value::Timestamp(Value(i));
    return Value::Int64(Value(i));
  }

 private:
  std::vector<int64_t> values_;
};

/// Column of doubles.
class DoubleArray : public Array {
 public:
  DoubleArray(std::vector<double> values, std::vector<uint8_t> validity,
              int64_t null_count)
      : Array(TypeId::kDouble, static_cast<int64_t>(values.size()),
              std::move(validity), null_count),
        values_(std::move(values)) {}

  double Value(int64_t i) const { return values_[static_cast<size_t>(i)]; }
  const std::vector<double>& values() const { return values_; }

  columnar::Value GetValue(int64_t i) const override {
    if (IsNull(i)) return Value::Null();
    return Value::Double(Value(i));
  }

 private:
  std::vector<double> values_;
};

/// Column of booleans.
class BoolArray : public Array {
 public:
  BoolArray(std::vector<uint8_t> values, std::vector<uint8_t> validity,
            int64_t null_count)
      : Array(TypeId::kBool, static_cast<int64_t>(values.size()),
              std::move(validity), null_count),
        values_(std::move(values)) {}

  bool Value(int64_t i) const { return values_[static_cast<size_t>(i)] != 0; }

  columnar::Value GetValue(int64_t i) const override {
    if (IsNull(i)) return Value::Null();
    return Value::Bool(Value(i));
  }

 private:
  std::vector<uint8_t> values_;
};

/// Column of strings stored Arrow-style as a contiguous character blob plus
/// n+1 offsets, so values are zero-copy string_views.
class StringArray : public Array {
 public:
  StringArray(std::string data, std::vector<uint32_t> offsets,
              std::vector<uint8_t> validity, int64_t null_count)
      : Array(TypeId::kString,
              static_cast<int64_t>(offsets.empty() ? 0 : offsets.size() - 1),
              std::move(validity), null_count),
        data_(std::move(data)),
        offsets_(std::move(offsets)) {}

  std::string_view Value(int64_t i) const {
    size_t idx = static_cast<size_t>(i);
    return std::string_view(data_).substr(offsets_[idx],
                                          offsets_[idx + 1] - offsets_[idx]);
  }

  const std::string& data() const { return data_; }
  const std::vector<uint32_t>& offsets() const { return offsets_; }

  columnar::Value GetValue(int64_t i) const override {
    if (IsNull(i)) return Value::Null();
    return Value::String(std::string(Value(i)));
  }

 private:
  std::string data_;
  std::vector<uint32_t> offsets_;
};

/// Downcast helpers; return nullptr when the dynamic type does not match.
inline const Int64Array* AsInt64(const Array& a) {
  return (a.type() == TypeId::kInt64 || a.type() == TypeId::kTimestamp)
             ? static_cast<const Int64Array*>(&a)
             : nullptr;
}
inline const DoubleArray* AsDouble(const Array& a) {
  return a.type() == TypeId::kDouble ? static_cast<const DoubleArray*>(&a)
                                     : nullptr;
}
inline const BoolArray* AsBool(const Array& a) {
  return a.type() == TypeId::kBool ? static_cast<const BoolArray*>(&a)
                                   : nullptr;
}
inline const StringArray* AsString(const Array& a) {
  return a.type() == TypeId::kString ? static_cast<const StringArray*>(&a)
                                     : nullptr;
}

}  // namespace bauplan::columnar

#endif  // BAUPLAN_COLUMNAR_ARRAY_H_
