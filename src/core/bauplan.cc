#include "core/bauplan.h"

#include "common/logging.h"
#include "common/strings.h"
#include "core/lakehouse_source.h"

namespace bauplan::core {

Bauplan::Bauplan(storage::ObjectStore* base_store, Clock* clock,
                 BauplanOptions options)
    : clock_(clock), options_(std::move(options)) {
  // Every component runs on the forkable wrapper: sequential paths pass
  // straight through to the caller's clock, while wavefront execution
  // gives each concurrent function body its own virtual timeline.
  fork_clock_ = std::make_unique<ForkableClock>(clock);
  Clock* run_clock = fork_clock_.get();
  // One registry + tracer for the whole platform: components below
  // register their counters here, and the runner / query path stamp
  // spans from the forkable clock so wavefront traces stay
  // deterministic.
  metrics_ = std::make_unique<observability::MetricsRegistry>();
  tracer_ = std::make_unique<observability::Tracer>(run_clock);
  lake_store_ = std::make_unique<storage::MeteredObjectStore>(
      base_store, run_clock, options_.lake_latency, options_.lake_cost,
      "store.lake", metrics_.get());
  spill_backing_ = std::make_unique<storage::MemoryObjectStore>();
  spill_store_ = std::make_unique<storage::MeteredObjectStore>(
      spill_backing_.get(), run_clock, options_.lake_latency,
      options_.lake_cost, "store.spill", metrics_.get());
  package_cache_ = std::make_unique<runtime::PackageCache>(
      run_clock, options_.package_cache, metrics_.get());
  containers_ = std::make_unique<runtime::ContainerManager>(
      run_clock, package_cache_.get(), options_.containers,
      metrics_.get());
  scheduler_ = std::make_unique<runtime::Scheduler>(
      run_clock, options_.scheduler, metrics_.get());
  executor_ = std::make_unique<runtime::ServerlessExecutor>(
      run_clock, containers_.get(), scheduler_.get());
  audit_ = std::make_unique<AuditLog>(lake_store_.get(), run_clock);
  query_cache_ = std::make_unique<QueryResultCache>(
      options_.query_cache_bytes, metrics_.get());
  artifact_cache_ = std::make_unique<cache::ArtifactCache>(
      lake_store_.get(), options_.artifact_cache_bytes, metrics_.get());
}

void Bauplan::Audit(const std::string& operation, const std::string& ref,
                    const std::string& detail, const Status& outcome) {
  if (!options_.enable_audit_log) return;
  Status st = audit_->Record(options_.author, operation, ref, detail,
                             outcome.ok() ? "ok" : outcome.ToString());
  if (!st.ok()) {
    LogWarning(StrCat("audit write failed: ", st.ToString()));
  }
}

Result<std::unique_ptr<Bauplan>> Bauplan::Open(
    storage::ObjectStore* base_store, Clock* clock,
    BauplanOptions options) {
  std::unique_ptr<Bauplan> platform(
      new Bauplan(base_store, clock, std::move(options)));
  Clock* run_clock = platform->fork_clock_.get();
  BAUPLAN_ASSIGN_OR_RETURN(
      catalog::Catalog catalog,
      catalog::Catalog::Open(platform->lake_store_.get(), run_clock));
  platform->catalog_ = std::make_unique<catalog::Catalog>(catalog);
  platform->table_ops_ = std::make_unique<table::TableOps>(
      platform->lake_store_.get(), run_clock);
  platform->registry_ = std::make_unique<pipeline::RunRegistry>(
      platform->lake_store_.get(), run_clock);
  // Adopt whatever artifacts earlier processes left in the lake store —
  // the cache is durable state, not a per-process accelerator.
  platform->artifact_cache_->LoadIndex();
  platform->runner_ = std::make_unique<PipelineRunner>(
      run_clock, platform->catalog_.get(), platform->table_ops_.get(),
      platform->executor_.get(), platform->spill_store_.get(),
      platform->tracer_.get(), platform->artifact_cache_.get(),
      platform->metrics_.get());
  return platform;
}

// --------------------------------------------------------------- tables

Status Bauplan::CreateTable(const std::string& branch,
                            const std::string& name,
                            const columnar::Schema& schema,
                            const table::PartitionSpec& spec) {
  if (catalog_->GetTable(branch, name).ok()) {
    return Status::AlreadyExists(
        StrCat("table '", name, "' already exists on '", branch, "'"));
  }
  BAUPLAN_ASSIGN_OR_RETURN(std::string metadata_key,
                           table_ops_->CreateTable(name, schema, spec));
  catalog::TableChanges changes;
  changes.puts[name] = metadata_key;
  Status st = catalog_
                  ->CommitChanges(branch, StrCat("create table ", name),
                                  options_.author, changes)
                  .status();
  Audit("create_table", branch, name, st);
  return st;
}

Status Bauplan::WriteTable(const std::string& branch,
                           const std::string& name,
                           const columnar::Table& data, bool overwrite) {
  BAUPLAN_ASSIGN_OR_RETURN(std::string metadata_key,
                           catalog_->GetTable(branch, name));
  Result<std::string> updated =
      overwrite ? table_ops_->Overwrite(metadata_key, data)
                : table_ops_->Append(metadata_key, data);
  BAUPLAN_RETURN_NOT_OK(updated.status());
  catalog::TableChanges changes;
  changes.puts[name] = *updated;
  Status st =
      catalog_
          ->CommitChanges(branch,
                          StrCat(overwrite ? "overwrite" : "append", " ",
                                 data.num_rows(), " rows into ", name),
                          options_.author, changes)
          .status();
  Audit("write_table", branch,
        StrCat(name, " (", data.num_rows(), " rows)"), st);
  return st;
}

Result<columnar::Table> Bauplan::ReadTable(
    const catalog::RefSpec& ref, const std::string& name,
    const table::ScanOptions& options) const {
  BAUPLAN_ASSIGN_OR_RETURN(std::string commit_id, catalog_->Resolve(ref));
  BAUPLAN_ASSIGN_OR_RETURN(std::string metadata_key,
                           catalog_->GetTable(commit_id, name));
  return table_ops_->ScanTable(metadata_key, options);
}

Result<std::vector<std::string>> Bauplan::ListTables(
    const catalog::RefSpec& ref) const {
  BAUPLAN_ASSIGN_OR_RETURN(std::string commit_id, catalog_->Resolve(ref));
  BAUPLAN_ASSIGN_OR_RETURN(auto tables, catalog_->GetTables(commit_id));
  std::vector<std::string> names;
  names.reserve(tables.size());
  for (const auto& [name, key] : tables) names.push_back(name);
  return names;
}

Status Bauplan::CreateTableAs(const catalog::RefSpec& ref,
                              const std::string& name,
                              std::string_view sql_text) {
  // Read at the full ref (possibly as-of); write to its branch.
  BAUPLAN_ASSIGN_OR_RETURN(sql::QueryResult result, Query(sql_text, ref));
  const std::string& branch = ref.name();
  BAUPLAN_RETURN_NOT_OK(CreateTable(branch, name, result.table.schema()));
  return WriteTable(branch, name, result.table, /*overwrite=*/true);
}

// ---------------------------------------------------------------- query

Result<sql::QueryResult> Bauplan::Query(std::string_view sql_text,
                                        const catalog::RefSpec& ref,
                                        const sql::QueryOptions& options) {
  std::string sql(sql_text);
  // Resolution failures fall back to scanning the raw name below, so a
  // ref that swallowed a malformed @timestamp must be rejected here —
  // the fallback would turn the typo into an unknown-table error.
  BAUPLAN_RETURN_NOT_OK(ref.status());
  const std::string ref_text = ref.ToString();
  uint64_t query_span = tracer_->StartSpan(
      "query", observability::span_kind::kQuery);
  tracer_->AddAttribute(query_span, "ref", ref_text);
  auto finish_trace = [&](sql::QueryResult* r) {
    tracer_->EndSpan(query_span);
    observability::Trace trace = tracer_->ExtractTrace(query_span);
    if (r != nullptr) r->trace = std::move(trace);
  };
  LogDebug(StrCat("query at ", ref_text, ": ", sql));
  // The result cache is sound because refs resolve to immutable commits
  // (an as-of ref resolves to the snapshot commit, so it caches too).
  auto commit = catalog_->Resolve(ref);
  if (commit.ok()) {
    sql::QueryResult cached;
    // A hit replays the whole original payload — stats, and (when the
    // caller captures plans) plan text and lints — so cached and
    // uncached executions are indistinguishable except from_cache.
    if (query_cache_->Lookup(sql, *commit, options.capture_plans,
                             &cached)) {
      cached.from_cache = true;
      tracer_->AddAttribute(query_span, "cache", "hit");
      LogDebug(StrCat("query cache hit at commit ", *commit));
      finish_trace(&cached);
      Audit("query", ref_text, StrCat(sql, " [cache hit]"), Status::OK());
      return cached;
    }
  }
  // Scans read at the pinned commit so an as-of ref sees history; fall
  // back to the raw name when resolution failed (the scan will surface
  // the unknown-ref error).
  LakehouseSource source(catalog_.get(), table_ops_.get(),
                         commit.ok() ? *commit : ref.name());
  sql::QueryOptions traced = options;
  traced.tracer = tracer_.get();
  traced.parent_span = query_span;
  traced.exec.metrics = metrics_.get();
  if (traced.exec.spill_store == nullptr) {
    // Budgeted operators spill through the metered store so spill
    // traffic shows up in the platform metrics like any other I/O.
    traced.exec.spill_store = spill_store_.get();
  }
  auto result = sql::RunQuery(sql, source, &source, traced);
  finish_trace(result.ok() ? &*result : nullptr);
  Audit("query", ref_text, sql, result.status());
  if (result.ok() && commit.ok()) {
    query_cache_->Insert(sql, *commit, *result, options.capture_plans);
  }
  return result;
}

// ------------------------------------------------------------- branches

Status Bauplan::CreateBranch(const std::string& name,
                             const std::string& from) {
  Status st = catalog_->CreateBranch(name, from);
  Audit("create_branch", name, StrCat("from ", from), st);
  return st;
}

Status Bauplan::DeleteBranch(const std::string& name) {
  Status st = catalog_->DeleteBranch(name);
  Audit("delete_branch", name, "", st);
  return st;
}

Result<catalog::MergeResult> Bauplan::MergeBranch(const std::string& from,
                                                  const std::string& into) {
  auto result = catalog_->Merge(from, into, options_.author);
  Audit("merge", into, StrCat("from ", from), result.status());
  return result;
}

Result<std::vector<std::string>> Bauplan::ListBranches() const {
  return catalog_->ListBranches();
}

Result<std::vector<catalog::Commit>> Bauplan::Log(const std::string& ref,
                                                  size_t limit) const {
  return catalog_->Log(ref, limit);
}

// ---------------------------------------------------------------- check

Result<analysis::AnalysisResult> Bauplan::Check(
    const pipeline::PipelineProject& project, const catalog::RefSpec& ref) {
  BAUPLAN_ASSIGN_OR_RETURN(std::string commit_id, catalog_->Resolve(ref));
  BAUPLAN_ASSIGN_OR_RETURN(auto tables, catalog_->GetTables(commit_id));
  std::set<std::string> known;
  for (const auto& [name, key] : tables) known.insert(name);
  // Schemas resolve at the pinned commit, exactly as a run's scans would.
  LakehouseSource source(catalog_.get(), table_ops_.get(), commit_id);
  analysis::Analyzer analyzer(std::move(known), &source);
  analysis::AnalyzerOptions opts;
  opts.tracer = tracer_.get();
  opts.metrics = metrics_.get();
  analysis::AnalysisResult result = analyzer.Analyze(project, opts);
  if (result.root_span != 0) {
    result.trace = tracer_->ExtractTrace(result.root_span);
  }
  Audit("check", ref.ToString(),
        StrCat(project.name(), ": ",
               result.diagnostics.error_count(), " error(s), ",
               result.diagnostics.warning_count(), " warning(s)"),
        result.ok()
            ? Status::OK()
            : Status::FailedPrecondition("static analysis found errors"));
  return result;
}

// ------------------------------------------------------------------ run

Status Bauplan::MaterializeArtifacts(const RunReport& execution,
                                     const std::string& target_branch) {
  for (const auto& [name, data] : execution.artifacts) {
    bool exists = catalog_->GetTable(target_branch, name).ok();
    if (!exists) {
      BAUPLAN_RETURN_NOT_OK(
          CreateTable(target_branch, name, data.schema()));
    }
    BAUPLAN_RETURN_NOT_OK(
        WriteTable(target_branch, name, data, /*overwrite=*/true));
  }
  return Status::OK();
}

Result<RunReport> Bauplan::Run(const pipeline::PipelineProject& project,
                               const std::string& branch,
                               const PipelineRunOptions& options) {
  // Pre-flight: refuse to schedule a project the analyzer rejects —
  // before a run is registered, a branch is created, or any container is
  // acquired. `--no-verify` (options.verify = false) skips this.
  if (options.verify) {
    BAUPLAN_ASSIGN_OR_RETURN(analysis::AnalysisResult check,
                             Check(project, catalog::RefSpec(branch)));
    if (!check.ok()) {
      return Status::FailedPrecondition(
          StrCat("project failed static analysis (re-run with --no-verify "
                 "to force):\n",
                 check.diagnostics.ToText()));
    }
  }
  BAUPLAN_ASSIGN_OR_RETURN(std::string head, catalog_->ResolveRef(branch));
  BAUPLAN_ASSIGN_OR_RETURN(pipeline::RunRecord record,
                           registry_->RegisterRun(project, branch, head));
  RunReport report;
  report.run_id = record.run_id;
  LogInfo(StrCat("run ", record.run_id, " started on '", branch, "' (",
                 project.nodes().size(), " nodes, ",
                 options.fused ? "fused" : "naive", ")"));

  // Fig. 4: execute in an ephemeral branch; merge only on full success.
  BAUPLAN_ASSIGN_OR_RETURN(std::string run_branch,
                           catalog_->CreateEphemeralBranch(branch, "run"));
  auto fail = [&](const std::string& why) -> Result<RunReport> {
    (void)catalog_->DeleteBranch(run_branch);
    BAUPLAN_RETURN_NOT_OK(
        registry_->FinishRun(record.run_id, StrCat("failed: ", why)));
    report.status = StrCat("failed: ", why);
    report.merged = false;
    report.metrics = metrics_->Snapshot();
    LogWarning(StrCat("run ", report.run_id, " failed: ", why));
    Audit("run", branch, StrCat("run ", report.run_id, " failed"),
          Status::FailedPrecondition(why));
    return report;
  };

  BAUPLAN_ASSIGN_OR_RETURN(auto tables, catalog_->GetTables(run_branch));
  std::set<std::string> known;
  for (const auto& [name, key] : tables) known.insert(name);
  auto dag = pipeline::Dag::Build(project, known);
  if (!dag.ok()) return fail(dag.status().ToString());

  // Same platform defaulting queries get: node bodies report exec.*
  // metrics here, and operator spills flow through the metered spill
  // store unless the caller routed them elsewhere.
  PipelineRunOptions wired = options;
  wired.exec.metrics = metrics_.get();
  if (wired.exec.spill_store == nullptr) {
    wired.exec.spill_store = spill_store_.get();
  }
  auto execution = runner_->Execute(*dag, run_branch, wired);
  if (!execution.ok()) return fail(execution.status().ToString());
  // The runner produced the execution half of the report; keep the
  // identity fields the facade already filled in.
  execution->run_id = report.run_id;
  report = std::move(*execution);

  if (!report.all_expectations_passed) {
    std::string details;
    for (const auto& node : report.nodes) {
      if (node.kind == pipeline::NodeKind::kExpectation &&
          !node.expectation_passed) {
        if (!details.empty()) details += "; ";
        details += StrCat(node.name, ": ", node.details);
      }
    }
    return fail(StrCat("expectations failed (", details, ")"));
  }

  // Audit passed: write artifacts into the ephemeral branch, then merge.
  Status materialized = MaterializeArtifacts(report, run_branch);
  if (!materialized.ok()) return fail(materialized.ToString());

  auto merged = catalog_->Merge(run_branch, branch, options_.author);
  if (!merged.ok()) return fail(merged.status().ToString());
  BAUPLAN_RETURN_NOT_OK(catalog_->DeleteBranch(run_branch));
  // Record which nodes the artifact cache served, so a later
  // `bauplan run --run-id N` can say what this run skipped.
  std::vector<std::string> cached_nodes;
  for (const auto& node : report.nodes) {
    if (node.cache_hit) cached_nodes.push_back(node.name);
  }
  BAUPLAN_RETURN_NOT_OK(registry_->FinishRun(record.run_id, "succeeded",
                                             merged->commit_id,
                                             cached_nodes));
  report.merged = true;
  report.merged_commit_id = merged->commit_id;
  report.status = "succeeded";
  report.metrics = metrics_->Snapshot();
  LogInfo(StrCat("run ", report.run_id, " merged into '", branch,
                 "' at commit ", merged->commit_id));
  Audit("run", branch,
        StrCat("run ", report.run_id, " fingerprint ", record.fingerprint),
        Status::OK());
  return report;
}

Result<RunReport> Bauplan::ReplayRun(int64_t run_id,
                                     const std::string& selector) {
  BAUPLAN_ASSIGN_OR_RETURN(pipeline::RunRecord record,
                           registry_->GetRun(run_id));
  BAUPLAN_ASSIGN_OR_RETURN(pipeline::PipelineProject project,
                           registry_->GetRunProject(run_id));

  // Sandboxed: a throwaway branch pinned at the run's result commit
  // (which holds the materialized artifacts a partial replay reads), or
  // at the input commit for runs that never merged.
  const std::string& pin = record.result_commit_id.empty()
                               ? record.data_commit_id
                               : record.result_commit_id;
  BAUPLAN_ASSIGN_OR_RETURN(
      std::string replay_branch,
      catalog_->CreateEphemeralBranch(pin, "replay"));

  BAUPLAN_ASSIGN_OR_RETURN(auto tables,
                           catalog_->GetTables(replay_branch));
  std::set<std::string> known;
  for (const auto& [name, key] : tables) known.insert(name);

  auto cleanup = [&]() { (void)catalog_->DeleteBranch(replay_branch); };

  auto dag = pipeline::Dag::Build(project, known);
  if (!dag.ok()) {
    cleanup();
    return dag.status();
  }

  PipelineRunOptions options;
  options.exec.metrics = metrics_.get();
  options.exec.spill_store = spill_store_.get();
  if (!selector.empty()) {
    auto parsed = pipeline::ReplaySelector::Parse(selector);
    if (!parsed.ok()) {
      cleanup();
      return parsed.status();
    }
    if (parsed->include_descendants) {
      auto selected = dag->DescendantsOf(parsed->node);
      if (!selected.ok()) {
        cleanup();
        return selected.status();
      }
      options.selected = std::move(*selected);
    } else {
      if (!dag->HasNode(parsed->node)) {
        cleanup();
        return Status::NotFound(
            StrCat("no node named '", parsed->node, "' in run ", run_id));
      }
      options.selected = {parsed->node};
    }
  }

  auto execution = runner_->Execute(*dag, replay_branch, options);
  cleanup();
  BAUPLAN_RETURN_NOT_OK(execution.status());

  RunReport report = std::move(*execution);
  report.run_id = run_id;
  report.merged = false;  // replays never touch user branches
  report.status = report.all_expectations_passed
                      ? "replayed"
                      : "replayed (expectations failed)";
  report.metrics = metrics_->Snapshot();
  Audit("replay", record.branch,
        StrCat("run ", run_id, selector.empty() ? "" : " -m ", selector),
        Status::OK());
  return report;
}

}  // namespace bauplan::core
