#ifndef BAUPLAN_CORE_LAKEHOUSE_SOURCE_H_
#define BAUPLAN_CORE_LAKEHOUSE_SOURCE_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "columnar/table.h"
#include "sql/engine.h"
#include "table/table_ops.h"

namespace bauplan::core {

/// Bridges the SQL engine to the lakehouse: table names resolve through
/// the versioned catalog at a pinned ref, and scans run through the
/// Iceberg-style planner, so the engine's pushed-down predicates become
/// partition pruning and zone-map skipping. A layered map of in-memory
/// tables (pipeline intermediates) shadows the catalog, which is how the
/// fused executor keeps artifacts off object storage.
class LakehouseSource : public sql::SchemaResolver, public sql::TableSource {
 public:
  /// Does not own `catalog` or `ops`. `ref` is a branch, tag, or commit.
  LakehouseSource(const catalog::Catalog* catalog, const table::TableOps* ops,
                  std::string ref)
      : catalog_(catalog), ops_(ops), ref_(std::move(ref)) {}

  /// Registers an in-memory table that shadows catalog contents.
  void AddOverlayTable(const std::string& name, columnar::Table table) {
    overlay_[name] = std::move(table);
  }

  const std::string& ref() const { return ref_; }

  /// Cumulative pruning stats across all scans through this source.
  const table::ScanPlan& last_scan_plan() const { return last_plan_; }
  int64_t total_files_pruned() const { return total_files_pruned_; }
  int64_t total_files_read() const { return total_files_read_; }

  Result<columnar::Schema> GetTableSchema(
      const std::string& table_name) const override;

  Result<columnar::Table> ScanTable(
      const std::string& name, const std::vector<std::string>& columns,
      const std::vector<format::ColumnPredicate>& predicates) override;

 private:
  const catalog::Catalog* catalog_;
  const table::TableOps* ops_;
  std::string ref_;
  std::map<std::string, columnar::Table> overlay_;
  table::ScanPlan last_plan_;
  int64_t total_files_pruned_ = 0;
  int64_t total_files_read_ = 0;
};

}  // namespace bauplan::core

#endif  // BAUPLAN_CORE_LAKEHOUSE_SOURCE_H_
