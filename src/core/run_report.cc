#include "core/run_report.h"

#include <sstream>

#include "common/strings.h"

namespace bauplan::core {

namespace {

const char* StartKindName(runtime::StartKind kind) {
  switch (kind) {
    case runtime::StartKind::kCold:
      return "cold";
    case runtime::StartKind::kFrozenResume:
      return "frozen_resume";
    case runtime::StartKind::kWarmReuse:
      return "warm_reuse";
  }
  return "unknown";
}

const char* NodeKindName(pipeline::NodeKind kind) {
  return kind == pipeline::NodeKind::kExpectation ? "expectation"
                                                  : "sql_model";
}

void AppendNodeJson(std::ostringstream& out, const NodeExecution& node) {
  out << "{\"name\":\"" << EscapeJson(node.name)
      << "\",\"kind\":\"" << NodeKindName(node.kind)
      << "\",\"output_rows\":" << node.output_rows
      << ",\"expectation_passed\":"
      << (node.expectation_passed ? "true" : "false")
      << ",\"cache_hit\":" << (node.cache_hit ? "true" : "false")
      << ",\"start_kind\":\"" << StartKindName(node.start_kind)
      << "\",\"worker\":" << node.worker << ",\"locality_hit\":"
      << (node.locality_hit ? "true" : "false")
      << ",\"queue_micros\":" << node.queue_micros
      << ",\"startup_micros\":" << node.startup_micros
      << ",\"transfer_micros\":" << node.transfer_micros
      << ",\"body_micros\":" << node.body_micros
      << ",\"total_micros\":" << node.total_micros << "}";
}

}  // namespace

void NodeExecution::ApplyInvocation(
    const runtime::InvocationReport& invocation) {
  start_kind = invocation.start_kind;
  worker = invocation.worker;
  locality_hit = invocation.locality_hit;
  queue_micros = invocation.queue_micros;
  startup_micros = invocation.startup_micros;
  transfer_micros = invocation.transfer_micros;
  body_micros = invocation.body_micros;
  total_micros = invocation.total_micros;
}

const NodeExecution* RunReport::FindNode(const std::string& name) const {
  for (const NodeExecution& node : nodes) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

std::string RunReport::ToJson() const {
  std::ostringstream out;
  out << "{\"version\":" << kSchemaVersion << ",\"run_id\":" << run_id
      << ",\"status\":\"" << EscapeJson(status)
      << "\",\"merged\":" << (merged ? "true" : "false")
      << ",\"merged_commit_id\":\""
      << EscapeJson(merged_commit_id)
      << "\",\"total_micros\":" << total_micros
      << ",\"all_expectations_passed\":"
      << (all_expectations_passed ? "true" : "false");
  out << ",\"nodes\":[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out << ",";
    AppendNodeJson(out, nodes[i]);
  }
  out << "]";
  if (fused.has_value()) {
    out << ",\"fused\":";
    AppendNodeJson(out, *fused);
  }
  out << ",\"spill\":{\"gets\":" << spill_metrics.gets
      << ",\"puts\":" << spill_metrics.puts
      << ",\"bytes_read\":" << spill_metrics.bytes_read
      << ",\"bytes_written\":" << spill_metrics.bytes_written << "}";
  out << ",\"trace\":" << trace.ToJson();
  out << ",\"metrics\":" << metrics.ToJson();
  out << "}";
  return out.str();
}

}  // namespace bauplan::core
