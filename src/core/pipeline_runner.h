#ifndef BAUPLAN_CORE_PIPELINE_RUNNER_H_
#define BAUPLAN_CORE_PIPELINE_RUNNER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "columnar/table.h"
#include "common/clock.h"
#include "pipeline/dag.h"
#include "runtime/executor.h"
#include "storage/metered_store.h"
#include "table/table_ops.h"

namespace bauplan::core {

namespace internal {
struct NaiveRunContext;
}  // namespace internal

/// How to execute a DAG.
struct PipelineRunOptions {
  /// Fused (default): the whole DAG runs as one function, intermediates
  /// stay in memory, WHERE filters are pushed into the source scans.
  /// Naive: one serverless function per node, every intermediate spills
  /// through object storage, scans materialize whole tables — the
  /// isomorphic plan-to-execution mapping the paper's first version used
  /// (section 4.4.2).
  bool fused = true;
  /// Naive mode only: with > 1, independent nodes dispatch together as
  /// wavefronts and their bodies run on up to this many threads; the
  /// run's latency reflects the DAG's critical path instead of the sum
  /// of nodes. 1 = the classic sequential walk. Ignored in fused mode
  /// (one function has nothing to parallelize over).
  int parallelism = 1;
  /// Run only these nodes (replay selection); empty = all. Upstream
  /// artifacts of unselected nodes are read from the catalog.
  std::vector<std::string> selected;
};

/// Per-node outcome.
struct NodeReport {
  std::string name;
  pipeline::NodeKind kind = pipeline::NodeKind::kSqlModel;
  int64_t output_rows = 0;
  /// Expectation nodes only.
  bool expectation_passed = true;
  std::string details;
  runtime::InvocationReport invocation;
};

/// Everything one DAG execution produced.
struct PipelineRunReport {
  std::vector<NodeReport> nodes;
  /// Simulated end-to-end latency of the run.
  uint64_t total_micros = 0;
  /// Object-store traffic caused by intermediate spill (naive mode).
  storage::StoreMetrics spill_metrics;
  bool all_expectations_passed = true;
  /// Artifact name -> produced table (SQL nodes only).
  std::map<std::string, columnar::Table> artifacts;
  /// Fused mode: the single invocation the whole DAG ran as (naive mode
  /// reports per node instead, in NodeReport::invocation).
  std::optional<runtime::InvocationReport> fused_invocation;
};

/// Executes an extracted DAG on the serverless substrate in fused or
/// naive mode. Materialization back to the catalog is the caller's job
/// (the Bauplan facade wraps this in transform-audit-write).
class PipelineRunner {
 public:
  /// Does not own its collaborators. `spill_store` is the metered store
  /// naive mode spills intermediates through.
  PipelineRunner(Clock* clock, const catalog::Catalog* catalog,
                 const table::TableOps* ops,
                 runtime::ServerlessExecutor* executor,
                 storage::MeteredObjectStore* spill_store)
      : clock_(clock),
        catalog_(catalog),
        ops_(ops),
        executor_(executor),
        spill_store_(spill_store) {}

  /// Runs `dag` reading source tables at `ref`. Expectation failures are
  /// reported in the result (not as an error Status); infrastructure
  /// failures are errors.
  Result<PipelineRunReport> Execute(const pipeline::Dag& dag,
                                    const std::string& ref,
                                    const PipelineRunOptions& options);

 private:
  Result<PipelineRunReport> ExecuteFused(
      const pipeline::Dag& dag, const std::string& ref,
      const std::vector<std::string>& selected);
  Result<PipelineRunReport> ExecuteNaive(
      const pipeline::Dag& dag, const std::string& ref,
      const std::vector<std::string>& selected);
  /// Wavefront variant of ExecuteNaive: ready nodes dispatch together
  /// through ServerlessExecutor::InvokeWave. Produces the same artifacts,
  /// expectation outcomes and spill metrics as the sequential walk (the
  /// bodies are identical; only the schedule differs).
  Result<PipelineRunReport> ExecuteParallelNaive(
      const pipeline::Dag& dag, const std::string& ref,
      const std::vector<std::string>& selected, int parallelism);

  /// The per-node FunctionRequest both naive paths dispatch: inputs list
  /// every upstream artifact, memory is sized from their bytes, and the
  /// body (scan sources, fetch spills, run the node, spill the output)
  /// writes its results into `node_report` and the shared context.
  runtime::FunctionRequest BuildNaiveRequest(
      internal::NaiveRunContext& ctx, const std::string& name,
      NodeReport* node_report);

  /// Container spec for a node (interpreter + its requirement set mapped
  /// onto synthetic packages).
  runtime::ContainerSpec SpecForNode(const pipeline::PipelineNode& node);

  Clock* clock_;
  const catalog::Catalog* catalog_;
  const table::TableOps* ops_;
  runtime::ServerlessExecutor* executor_;
  storage::MeteredObjectStore* spill_store_;
};

}  // namespace bauplan::core

#endif  // BAUPLAN_CORE_PIPELINE_RUNNER_H_
