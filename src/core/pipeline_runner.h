#ifndef BAUPLAN_CORE_PIPELINE_RUNNER_H_
#define BAUPLAN_CORE_PIPELINE_RUNNER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "core/run_report.h"
#include "observability/trace.h"
#include "pipeline/dag.h"
#include "runtime/executor.h"
#include "sql/executor.h"
#include "storage/metered_store.h"
#include "table/table_ops.h"

namespace bauplan::core {

namespace internal {
struct NaiveRunContext;
}  // namespace internal

/// How to execute a DAG.
struct PipelineRunOptions {
  /// Fused (default): the whole DAG runs as one function, intermediates
  /// stay in memory, WHERE filters are pushed into the source scans.
  /// Naive: one serverless function per node, every intermediate spills
  /// through object storage, scans materialize whole tables — the
  /// isomorphic plan-to-execution mapping the paper's first version used
  /// (section 4.4.2).
  bool fused = true;
  /// Naive mode only: with > 1, independent nodes dispatch together as
  /// wavefronts and their bodies run on up to this many threads; the
  /// run's latency reflects the DAG's critical path instead of the sum
  /// of nodes. 1 = the classic sequential walk. Ignored in fused mode
  /// (one function has nothing to parallelize over).
  int parallelism = 1;
  /// Run only these nodes (replay selection); empty = all. Upstream
  /// artifacts of unselected nodes are read from the catalog.
  std::vector<std::string> selected;
  /// Static pre-flight: analyze the project before scheduling and refuse
  /// to run (FailedPrecondition, no container acquired) when the
  /// analyzer reports errors. `bauplan run --no-verify` turns this off.
  bool verify = true;
  /// Fused mode only: build the cross-pipeline lineage graph and trim
  /// each node's materialized output to the columns some downstream
  /// node, expectation, or terminal artifact actually reads (`bauplan
  /// run --trim`). Off by default because trimmed intermediate
  /// artifacts are observably narrower than the node's SELECT list.
  bool trim_unused_columns = false;
  /// Execution knobs for every SQL node body (engine, threads, morsel
  /// size, memory budget) — the same struct queries take, embedded by
  /// value instead of copied field-by-field. Defaults come from
  /// sql::ExecOptions::FromEnv() at the CLI layer; tracer/metrics/spill
  /// wiring inside is overridden per node by the runner.
  sql::ExecOptions exec;
};

/// Executes an extracted DAG on the serverless substrate in fused or
/// naive mode, producing the execution half of a RunReport (run_id and
/// merge outcome stay defaulted — materialization back to the catalog is
/// the caller's job; the Bauplan facade wraps this in
/// transform-audit-write).
class PipelineRunner {
 public:
  /// Does not own its collaborators. `spill_store` is the metered store
  /// naive mode spills intermediates through. With a non-null `tracer`
  /// every run produces a span tree (run -> wave -> node -> {scan, sql,
  /// expectation, spill}) extracted into RunReport::trace.
  PipelineRunner(Clock* clock, const catalog::Catalog* catalog,
                 const table::TableOps* ops,
                 runtime::ServerlessExecutor* executor,
                 storage::MeteredObjectStore* spill_store,
                 observability::Tracer* tracer = nullptr)
      : clock_(clock),
        catalog_(catalog),
        ops_(ops),
        executor_(executor),
        spill_store_(spill_store),
        tracer_(tracer) {}

  /// Runs `dag` reading source tables at `ref`. Expectation failures are
  /// reported in the result (not as an error Status); infrastructure
  /// failures are errors.
  Result<RunReport> Execute(const pipeline::Dag& dag,
                            const std::string& ref,
                            const PipelineRunOptions& options);

 private:
  Result<RunReport> ExecuteFused(const pipeline::Dag& dag,
                                 const std::string& ref,
                                 const std::vector<std::string>& selected,
                                 const sql::ExecOptions& exec,
                                 bool trim_unused_columns,
                                 uint64_t run_span);
  Result<RunReport> ExecuteNaive(const pipeline::Dag& dag,
                                 const std::string& ref,
                                 const std::vector<std::string>& selected,
                                 const sql::ExecOptions& exec,
                                 uint64_t run_span);
  /// Wavefront variant of ExecuteNaive: ready nodes dispatch together
  /// through ServerlessExecutor::InvokeWave. Produces the same artifacts,
  /// expectation outcomes and spill metrics as the sequential walk (the
  /// bodies are identical; only the schedule differs).
  Result<RunReport> ExecuteParallelNaive(
      const pipeline::Dag& dag, const std::string& ref,
      const std::vector<std::string>& selected,
      const sql::ExecOptions& exec, int parallelism, uint64_t run_span);

  /// The per-node FunctionRequest both naive paths dispatch: inputs list
  /// every upstream artifact, memory is sized from their bytes, and the
  /// body (scan sources, fetch spills, run the node, spill the output)
  /// writes its results into `node_report` and the shared context.
  /// `node_span` parents the body's scan/sql/expectation/spill spans.
  runtime::FunctionRequest BuildNaiveRequest(
      internal::NaiveRunContext& ctx, const std::string& name,
      NodeExecution* node_report, uint64_t node_span);

  /// Container spec for a node (interpreter + its requirement set mapped
  /// onto synthetic packages).
  runtime::ContainerSpec SpecForNode(const pipeline::PipelineNode& node);

  Clock* clock_;
  const catalog::Catalog* catalog_;
  const table::TableOps* ops_;
  runtime::ServerlessExecutor* executor_;
  storage::MeteredObjectStore* spill_store_;
  observability::Tracer* tracer_;
};

}  // namespace bauplan::core

#endif  // BAUPLAN_CORE_PIPELINE_RUNNER_H_
