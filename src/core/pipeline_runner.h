#ifndef BAUPLAN_CORE_PIPELINE_RUNNER_H_
#define BAUPLAN_CORE_PIPELINE_RUNNER_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "columnar/table.h"
#include "common/clock.h"
#include "pipeline/dag.h"
#include "runtime/executor.h"
#include "storage/metered_store.h"
#include "table/table_ops.h"

namespace bauplan::core {

/// How to execute a DAG.
struct PipelineRunOptions {
  /// Fused (default): the whole DAG runs as one function, intermediates
  /// stay in memory, WHERE filters are pushed into the source scans.
  /// Naive: one serverless function per node, every intermediate spills
  /// through object storage, scans materialize whole tables — the
  /// isomorphic plan-to-execution mapping the paper's first version used
  /// (section 4.4.2).
  bool fused = true;
  /// Run only these nodes (replay selection); empty = all. Upstream
  /// artifacts of unselected nodes are read from the catalog.
  std::vector<std::string> selected;
};

/// Per-node outcome.
struct NodeReport {
  std::string name;
  pipeline::NodeKind kind = pipeline::NodeKind::kSqlModel;
  int64_t output_rows = 0;
  /// Expectation nodes only.
  bool expectation_passed = true;
  std::string details;
  runtime::InvocationReport invocation;
};

/// Everything one DAG execution produced.
struct PipelineRunReport {
  std::vector<NodeReport> nodes;
  /// Simulated end-to-end latency of the run.
  uint64_t total_micros = 0;
  /// Object-store traffic caused by intermediate spill (naive mode).
  storage::StoreMetrics spill_metrics;
  bool all_expectations_passed = true;
  /// Artifact name -> produced table (SQL nodes only).
  std::map<std::string, columnar::Table> artifacts;
};

/// Executes an extracted DAG on the serverless substrate in fused or
/// naive mode. Materialization back to the catalog is the caller's job
/// (the Bauplan facade wraps this in transform-audit-write).
class PipelineRunner {
 public:
  /// Does not own its collaborators. `spill_store` is the metered store
  /// naive mode spills intermediates through.
  PipelineRunner(Clock* clock, const catalog::Catalog* catalog,
                 const table::TableOps* ops,
                 runtime::ServerlessExecutor* executor,
                 storage::MeteredObjectStore* spill_store)
      : clock_(clock),
        catalog_(catalog),
        ops_(ops),
        executor_(executor),
        spill_store_(spill_store) {}

  /// Runs `dag` reading source tables at `ref`. Expectation failures are
  /// reported in the result (not as an error Status); infrastructure
  /// failures are errors.
  Result<PipelineRunReport> Execute(const pipeline::Dag& dag,
                                    const std::string& ref,
                                    const PipelineRunOptions& options);

 private:
  Result<PipelineRunReport> ExecuteFused(
      const pipeline::Dag& dag, const std::string& ref,
      const std::vector<std::string>& selected);
  Result<PipelineRunReport> ExecuteNaive(
      const pipeline::Dag& dag, const std::string& ref,
      const std::vector<std::string>& selected);

  /// Container spec for a node (interpreter + its requirement set mapped
  /// onto synthetic packages).
  runtime::ContainerSpec SpecForNode(const pipeline::PipelineNode& node);

  Clock* clock_;
  const catalog::Catalog* catalog_;
  const table::TableOps* ops_;
  runtime::ServerlessExecutor* executor_;
  storage::MeteredObjectStore* spill_store_;
};

}  // namespace bauplan::core

#endif  // BAUPLAN_CORE_PIPELINE_RUNNER_H_
