#ifndef BAUPLAN_CORE_PIPELINE_RUNNER_H_
#define BAUPLAN_CORE_PIPELINE_RUNNER_H_

#include <string>
#include <vector>

#include "cache/artifact_cache.h"
#include "cache/fingerprint.h"
#include "catalog/catalog.h"
#include "common/clock.h"
#include "core/run_report.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "pipeline/dag.h"
#include "runtime/executor.h"
#include "sql/executor.h"
#include "storage/metered_store.h"
#include "table/table_ops.h"

namespace bauplan::core {

namespace internal {
struct NaiveRunContext;
}  // namespace internal

/// How to execute a DAG.
struct PipelineRunOptions {
  /// Fused (default): the whole DAG runs as one function, intermediates
  /// stay in memory, WHERE filters are pushed into the source scans.
  /// Naive: one serverless function per node, every intermediate spills
  /// through object storage, scans materialize whole tables — the
  /// isomorphic plan-to-execution mapping the paper's first version used
  /// (section 4.4.2).
  bool fused = true;
  /// Naive mode only: with > 1, independent nodes dispatch together as
  /// wavefronts and their bodies run on up to this many threads; the
  /// run's latency reflects the DAG's critical path instead of the sum
  /// of nodes. 1 = the classic sequential walk. Ignored in fused mode
  /// (one function has nothing to parallelize over).
  int parallelism = 1;
  /// Run only these nodes (replay selection); empty = all. Upstream
  /// artifacts of unselected nodes are read from the catalog.
  std::vector<std::string> selected;
  /// Static pre-flight: analyze the project before scheduling and refuse
  /// to run (FailedPrecondition, no container acquired) when the
  /// analyzer reports errors. `bauplan run --no-verify` turns this off.
  bool verify = true;
  /// Fused mode only: build the cross-pipeline lineage graph and trim
  /// each node's materialized output to the columns some downstream
  /// node, expectation, or terminal artifact actually reads (`bauplan
  /// run --trim`). Off by default because trimmed intermediate
  /// artifacts are observably narrower than the node's SELECT list.
  bool trim_unused_columns = false;
  /// Execution knobs for every SQL node body (engine, threads, morsel
  /// size, memory budget) — the same struct queries take, embedded by
  /// value instead of copied field-by-field. Defaults come from
  /// sql::ExecOptions::FromEnv() at the CLI layer; tracer/metrics/spill
  /// wiring inside is overridden per node by the runner.
  sql::ExecOptions exec;
  /// Probe the differential artifact cache before dispatching each node
  /// and memoize fresh post-audit outputs after the run (`bauplan run
  /// --no-cache` turns this off). No effect when the runner has no cache
  /// or the cache's budget is 0.
  bool use_cache = true;
};

/// Executes an extracted DAG on the serverless substrate in fused or
/// naive mode, producing the execution half of a RunReport (run_id and
/// merge outcome stay defaulted — materialization back to the catalog is
/// the caller's job; the Bauplan facade wraps this in
/// transform-audit-write).
class PipelineRunner {
 public:
  /// Does not own its collaborators. `spill_store` is the metered store
  /// naive mode spills intermediates through. With a non-null `tracer`
  /// every run produces a span tree (run -> wave -> node -> {scan, sql,
  /// expectation, spill}) extracted into RunReport::trace. With a
  /// non-null `cache` every run probes it per node (hits skip memory
  /// reservation and container acquisition entirely) and memoizes fresh
  /// post-audit artifacts; `metrics` hosts the runner's own
  /// cache.skipped_invocations counter.
  PipelineRunner(Clock* clock, const catalog::Catalog* catalog,
                 const table::TableOps* ops,
                 runtime::ServerlessExecutor* executor,
                 storage::MeteredObjectStore* spill_store,
                 observability::Tracer* tracer = nullptr,
                 cache::ArtifactCache* cache = nullptr,
                 observability::MetricsRegistry* metrics = nullptr)
      : clock_(clock),
        catalog_(catalog),
        ops_(ops),
        executor_(executor),
        spill_store_(spill_store),
        tracer_(tracer),
        cache_(cache),
        skipped_invocations_(
            metrics == nullptr
                ? nullptr
                : metrics->GetCounter("cache.skipped_invocations")) {}

  /// Runs `dag` reading source tables at `ref`. Expectation failures are
  /// reported in the result (not as an error Status); infrastructure
  /// failures are errors.
  Result<RunReport> Execute(const pipeline::Dag& dag,
                            const std::string& ref,
                            const PipelineRunOptions& options);

 private:
  Result<RunReport> ExecuteFused(const pipeline::Dag& dag,
                                 const std::string& ref,
                                 const std::vector<std::string>& selected,
                                 const sql::ExecOptions& exec,
                                 bool trim_unused_columns,
                                 const cache::NodeFingerprints* keys,
                                 uint64_t run_span);
  Result<RunReport> ExecuteNaive(const pipeline::Dag& dag,
                                 const std::string& ref,
                                 const std::vector<std::string>& selected,
                                 const sql::ExecOptions& exec,
                                 const cache::NodeFingerprints* keys,
                                 uint64_t run_span);
  /// Wavefront variant of ExecuteNaive: ready nodes dispatch together
  /// through ServerlessExecutor::InvokeWave. Produces the same artifacts,
  /// expectation outcomes and spill metrics as the sequential walk (the
  /// bodies are identical; only the schedule differs).
  Result<RunReport> ExecuteParallelNaive(
      const pipeline::Dag& dag, const std::string& ref,
      const std::vector<std::string>& selected,
      const sql::ExecOptions& exec, int parallelism,
      const cache::NodeFingerprints* keys, uint64_t run_span);

  /// Probes the cache for `name` (`keys` may be null = caching off) and,
  /// on a hit, completes the node without dispatching a function: fills
  /// `node_report` (cache_hit, rows, audit outcome), feeds the run's
  /// artifact map, and — when a selected downstream consumer will read
  /// the output through the spill store — re-materializes the cached
  /// table under the node's spill key so downstream bodies are untouched.
  /// Returns false on a miss, an empty key, or a failed materialize (the
  /// caller then executes the node normally; cache trouble never fails a
  /// run). `node_span` parents the cache.probe / cache.materialize spans.
  bool TryServeFromCache(internal::NaiveRunContext& ctx,
                         const cache::NodeFingerprints* keys,
                         const std::string& name,
                         bool has_selected_consumer,
                         NodeExecution* node_report, uint64_t node_span);

  /// Memoizes every freshly-executed node of a finished run whose
  /// expectations all passed (cached artifacts are post-audit by
  /// contract). Hits are skipped (already cached), as are nodes with
  /// empty keys.
  void InsertFreshArtifacts(const RunReport& report,
                            const cache::NodeFingerprints& keys);

  /// The per-node FunctionRequest both naive paths dispatch: inputs list
  /// every upstream artifact, memory is sized from their bytes, and the
  /// body (scan sources, fetch spills, run the node, spill the output)
  /// writes its results into `node_report` and the shared context.
  /// `node_span` parents the body's scan/sql/expectation/spill spans.
  runtime::FunctionRequest BuildNaiveRequest(
      internal::NaiveRunContext& ctx, const std::string& name,
      NodeExecution* node_report, uint64_t node_span);

  /// Container spec for a node (interpreter + its requirement set mapped
  /// onto synthetic packages).
  runtime::ContainerSpec SpecForNode(const pipeline::PipelineNode& node);

  Clock* clock_;
  const catalog::Catalog* catalog_;
  const table::TableOps* ops_;
  runtime::ServerlessExecutor* executor_;
  storage::MeteredObjectStore* spill_store_;
  observability::Tracer* tracer_;
  cache::ArtifactCache* cache_;
  /// Function invocations never dispatched because the node was served
  /// from the cache (the bench's cone gate reads this).
  observability::Counter* skipped_invocations_;
};

}  // namespace bauplan::core

#endif  // BAUPLAN_CORE_PIPELINE_RUNNER_H_
