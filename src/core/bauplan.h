#ifndef BAUPLAN_CORE_BAUPLAN_H_
#define BAUPLAN_CORE_BAUPLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "catalog/catalog.h"
#include "columnar/table.h"
#include "common/clock.h"
#include "core/audit_log.h"
#include "core/pipeline_runner.h"
#include "core/query_cache.h"
#include "core/run_report.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "pipeline/run_registry.h"
#include "runtime/executor.h"
#include "sql/engine.h"
#include "storage/metered_store.h"
#include "table/table_ops.h"

namespace bauplan::core {

/// Platform configuration.
struct BauplanOptions {
  /// Latency/cost model of the data lake's object storage.
  storage::LatencyModel lake_latency = storage::LatencyModel::Instant();
  storage::CostModel lake_cost;
  /// Serverless substrate sizing.
  runtime::Scheduler::Options scheduler;
  runtime::ContainerManager::Options containers;
  runtime::PackageCache::Options package_cache;
  /// Recorded as commit author.
  std::string author = "bauplan";
  /// Result-cache budget for Query(); 0 disables. Keyed by (sql, commit),
  /// so versioning makes invalidation automatic.
  uint64_t query_cache_bytes = 256ull << 20;
  /// Byte budget of the differential artifact cache memoizing pipeline
  /// node outputs across runs (and branches — keys are content ids, not
  /// refs); 0 disables it. Entries live in the lake store under
  /// "cache/", so they persist wherever the catalog does. `bauplan run
  /// --cache-budget BYTES` / BAUPLAN_CACHE_BUDGET override this.
  uint64_t artifact_cache_bytes = 1ull << 30;
  /// Record every platform verb in the durable audit trail.
  bool enable_audit_log = true;
};

/// The Bauplan platform facade: one object wiring together the versioned
/// catalog (Nessie stand-in), table format (Iceberg stand-in), SQL engine
/// (DuckDB stand-in), serverless runtime and code intelligence, behind
/// the two verbs of the paper's CLI — `Query` (synchronous QW) and `Run`
/// (pipeline TD with transform-audit-write).
class Bauplan {
 public:
  /// Opens a lakehouse stored in `base_store`. Does not own `base_store`
  /// or `clock`; both must outlive the platform.
  static Result<std::unique_ptr<Bauplan>> Open(
      storage::ObjectStore* base_store, Clock* clock,
      BauplanOptions options = {});

  // ----------------------------------------------------------- tables

  /// Creates an empty table on `branch` (committed to the catalog).
  Status CreateTable(const std::string& branch, const std::string& name,
                     const columnar::Schema& schema,
                     const table::PartitionSpec& spec = {});

  /// Appends rows to (or overwrites) a table on `branch`.
  Status WriteTable(const std::string& branch, const std::string& name,
                    const columnar::Table& data, bool overwrite = false);

  /// Reads a table at any ref (branch, tag, commit, or "name@timestamp"
  /// as-of), with optional time travel inside the table's snapshot
  /// history.
  Result<columnar::Table> ReadTable(
      const catalog::RefSpec& ref, const std::string& name,
      const table::ScanOptions& options = {}) const;

  /// Table names visible at `ref`.
  Result<std::vector<std::string>> ListTables(
      const catalog::RefSpec& ref) const;

  /// CREATE TABLE AS: runs `sql_text` at `ref` (possibly an as-of view)
  /// and materializes the result as a new table on the ref's branch
  /// (one-query-one-artifact without a pipeline).
  Status CreateTableAs(const catalog::RefSpec& ref, const std::string& name,
                       std::string_view sql_text);

  // ------------------------------------------------------------ query

  /// `bauplan query -q "..." [-b ref]`: synchronous SQL over the
  /// lakehouse at `ref` (branch, tag, commit, or "name@timestamp"), with
  /// pushdown into partition/zone-map pruning.
  Result<sql::QueryResult> Query(std::string_view sql_text,
                                 const catalog::RefSpec& ref = {},
                                 const sql::QueryOptions& options = {});

  // --------------------------------------------------------- branches

  Status CreateBranch(const std::string& name, const std::string& from);
  Status DeleteBranch(const std::string& name);
  Result<catalog::MergeResult> MergeBranch(const std::string& from,
                                           const std::string& into);
  Result<std::vector<std::string>> ListBranches() const;
  Result<std::vector<catalog::Commit>> Log(const std::string& ref,
                                           size_t limit = 0) const;

  // ------------------------------------------------------------- check

  /// `bauplan check`: statically analyzes the project against the
  /// catalog at `ref` — structural reference resolution, column-level
  /// schema propagation through the planner, expectation validation —
  /// without executing anything. Problems come back as diagnostics in
  /// the result; the returned Status is only for infrastructure errors
  /// (unknown ref, catalog I/O).
  Result<analysis::AnalysisResult> Check(
      const pipeline::PipelineProject& project,
      const catalog::RefSpec& ref = {});

  // --------------------------------------------------------------- run

  /// `bauplan run`: snapshots + fingerprints the project, executes its
  /// DAG inside an ephemeral branch (transform-audit-write), materializes
  /// every SQL artifact as a table, and merges into `branch` only when
  /// all expectations pass.
  Result<RunReport> Run(const pipeline::PipelineProject& project,
                        const std::string& branch,
                        const PipelineRunOptions& options = {});

  /// `bauplan run --run-id N [-m node+]`: re-executes the recorded
  /// snapshot against the recorded data commit, sandboxed (never merged).
  Result<RunReport> ReplayRun(int64_t run_id,
                              const std::string& selector = "");

  // ------------------------------------------------------ introspection

  catalog::Catalog* mutable_catalog() { return catalog_.get(); }
  const pipeline::RunRegistry& run_registry() const { return *registry_; }
  /// The durable audit trail (Full Auditability, section 2).
  const AuditLog& audit_log() const { return *audit_; }
  // Metric accessors return point-in-time snapshots by value; call again
  // for fresh numbers.
  QueryResultCache::Stats query_cache_stats() const {
    return query_cache_->stats();
  }
  cache::ArtifactCache::Stats artifact_cache_stats() const {
    return artifact_cache_->stats();
  }
  cache::ArtifactCache* artifact_cache() { return artifact_cache_.get(); }
  storage::StoreMetrics lake_metrics() const {
    return lake_store_->metrics();
  }
  runtime::ContainerManagerMetrics container_metrics() const {
    return containers_->metrics();
  }
  runtime::PackageCacheMetrics package_cache_metrics() const {
    return package_cache_->metrics();
  }
  /// Flat dump of every instrument the platform's components registered
  /// (store.lake.*, store.spill.*, scheduler.*, containers.*,
  /// package_cache.*, query_cache.*).
  observability::MetricsSnapshot metrics_snapshot() const {
    return metrics_->Snapshot();
  }
  observability::MetricsRegistry* metrics_registry() {
    return metrics_.get();
  }
  observability::Tracer* tracer() { return tracer_.get(); }
  runtime::ServerlessExecutor* executor() { return executor_.get(); }
  runtime::Scheduler* scheduler() { return scheduler_.get(); }
  Clock* clock() { return clock_; }

 private:
  Bauplan(storage::ObjectStore* base_store, Clock* clock,
          BauplanOptions options);

  /// Materializes run artifacts as catalog tables on `target_branch`.
  Status MaterializeArtifacts(const RunReport& execution,
                              const std::string& target_branch);

  /// Records one audit entry; failures are logged, never fatal.
  void Audit(const std::string& operation, const std::string& ref,
             const std::string& detail, const Status& outcome);

  Clock* clock_;
  BauplanOptions options_;
  /// Wraps `clock_`; every component below runs on it so the wavefront
  /// executor can fork per-function timelines. Declared first: it must
  /// outlive everything that holds it.
  std::unique_ptr<ForkableClock> fork_clock_;
  /// One registry + tracer per platform (benches open several platforms
  /// side by side; a process-global registry would mix their counters).
  /// Declared before the components that register into them.
  std::unique_ptr<observability::MetricsRegistry> metrics_;
  std::unique_ptr<observability::Tracer> tracer_;
  std::unique_ptr<storage::MeteredObjectStore> lake_store_;
  std::unique_ptr<storage::MemoryObjectStore> spill_backing_;
  std::unique_ptr<storage::MeteredObjectStore> spill_store_;
  std::unique_ptr<catalog::Catalog> catalog_;
  std::unique_ptr<table::TableOps> table_ops_;
  std::unique_ptr<pipeline::RunRegistry> registry_;
  /// Lives in the lake store (under "cache/") so cached artifacts ride
  /// the same persistence, metering and fault injection as everything
  /// else; declared before the runner that probes it.
  std::unique_ptr<cache::ArtifactCache> artifact_cache_;
  std::unique_ptr<runtime::PackageCache> package_cache_;
  std::unique_ptr<runtime::ContainerManager> containers_;
  std::unique_ptr<runtime::Scheduler> scheduler_;
  std::unique_ptr<runtime::ServerlessExecutor> executor_;
  std::unique_ptr<PipelineRunner> runner_;
  std::unique_ptr<AuditLog> audit_;
  std::unique_ptr<QueryResultCache> query_cache_;
};

}  // namespace bauplan::core

#endif  // BAUPLAN_CORE_BAUPLAN_H_
