#include "core/query_cache.h"

#include "common/hash.h"

namespace bauplan::core {

QueryResultCache::QueryResultCache(
    uint64_t capacity_bytes, observability::MetricsRegistry* registry)
    : capacity_bytes_(capacity_bytes) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<observability::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  hits_ = registry->GetCounter("query_cache.hits");
  misses_ = registry->GetCounter("query_cache.misses");
  evictions_ = registry->GetCounter("query_cache.evictions");
}

QueryResultCache::Stats QueryResultCache::stats() const {
  Stats snapshot;
  snapshot.hits = hits_->Value();
  snapshot.misses = misses_->Value();
  snapshot.evictions = evictions_->Value();
  return snapshot;
}

std::string QueryResultCache::MakeKey(const std::string& sql,
                                      const std::string& commit_id) {
  return FingerprintHex(sql) + ":" + commit_id;
}

bool QueryResultCache::Lookup(const std::string& sql,
                              const std::string& commit_id,
                              columnar::Table* out) {
  if (capacity_bytes_ == 0) return false;
  auto it = entries_.find(MakeKey(sql, commit_id));
  if (it == entries_.end()) {
    misses_->Increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->table;
  hits_->Increment();
  return true;
}

void QueryResultCache::Insert(const std::string& sql,
                              const std::string& commit_id,
                              const columnar::Table& table) {
  if (capacity_bytes_ == 0) return;
  std::string key = MakeKey(sql, commit_id);
  if (entries_.count(key) > 0) return;  // immutable: nothing to refresh
  uint64_t bytes = static_cast<uint64_t>(table.EstimatedBytes());
  if (bytes > capacity_bytes_) return;
  EvictUntilFits(bytes);
  lru_.push_front(Entry{key, table, bytes});
  entries_[key] = lru_.begin();
  used_bytes_ += bytes;
}

void QueryResultCache::EvictUntilFits(uint64_t incoming) {
  while (!lru_.empty() && used_bytes_ + incoming > capacity_bytes_) {
    const Entry& victim = lru_.back();
    used_bytes_ -= victim.bytes;
    entries_.erase(victim.key);
    lru_.pop_back();
    evictions_->Increment();
  }
}

void QueryResultCache::Clear() {
  lru_.clear();
  entries_.clear();
  used_bytes_ = 0;
}

}  // namespace bauplan::core
