#include "core/query_cache.h"

#include "common/hash.h"

namespace bauplan::core {

QueryResultCache::QueryResultCache(
    uint64_t capacity_bytes, observability::MetricsRegistry* registry)
    : capacity_bytes_(capacity_bytes) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<observability::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  hits_ = registry->GetCounter("query_cache.hits");
  misses_ = registry->GetCounter("query_cache.misses");
  evictions_ = registry->GetCounter("query_cache.evictions");
}

QueryResultCache::Stats QueryResultCache::stats() const {
  Stats snapshot;
  snapshot.hits = hits_->Value();
  snapshot.misses = misses_->Value();
  snapshot.evictions = evictions_->Value();
  return snapshot;
}

std::string QueryResultCache::MakeKey(const std::string& sql,
                                      const std::string& commit_id) {
  return FingerprintHex(sql) + ":" + commit_id;
}

uint64_t QueryResultCache::EntryBytes(const Entry& entry) {
  return static_cast<uint64_t>(entry.table.EstimatedBytes()) +
         entry.logical_plan.size() + entry.physical_plan.size();
}

bool QueryResultCache::Lookup(const std::string& sql,
                              const std::string& commit_id,
                              bool need_plans, sql::QueryResult* out) {
  if (capacity_bytes_ == 0) return false;
  auto it = entries_.find(MakeKey(sql, commit_id));
  if (it == entries_.end() || (need_plans && !it->second->has_plans)) {
    // A plan-less entry cannot serve an EXPLAIN-shaped request; miss so
    // the re-execution captures plans (and upgrades the entry).
    misses_->Increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  const Entry& entry = *it->second;
  out->table = entry.table;
  out->stats = entry.exec_stats;
  // Mirror the uncached path exactly: plans and lints only materialize
  // when the caller asked for them, even if the entry carries them.
  if (need_plans) {
    out->logical_plan = entry.logical_plan;
    out->physical_plan = entry.physical_plan;
    out->lints = entry.lints;
  } else {
    out->logical_plan.clear();
    out->physical_plan.clear();
    out->lints.clear();
  }
  hits_->Increment();
  return true;
}

bool QueryResultCache::Lookup(const std::string& sql,
                              const std::string& commit_id,
                              columnar::Table* out) {
  sql::QueryResult result;
  if (!Lookup(sql, commit_id, /*need_plans=*/false, &result)) return false;
  *out = std::move(result.table);
  return true;
}

void QueryResultCache::Insert(const std::string& sql,
                              const std::string& commit_id,
                              const sql::QueryResult& result,
                              bool has_plans) {
  if (capacity_bytes_ == 0) return;
  std::string key = MakeKey(sql, commit_id);
  auto existing = entries_.find(key);
  if (existing != entries_.end()) {
    // Immutable key: nothing to refresh — unless this insert can upgrade
    // a plan-less entry with captured plans.
    if (!has_plans || existing->second->has_plans) return;
    used_bytes_ -= existing->second->bytes;
    lru_.erase(existing->second);
    entries_.erase(existing);
  }
  Entry entry;
  entry.key = key;
  entry.table = result.table;
  entry.exec_stats = result.stats;
  entry.has_plans = has_plans;
  if (has_plans) {
    entry.logical_plan = result.logical_plan;
    entry.physical_plan = result.physical_plan;
    entry.lints = result.lints;
  }
  entry.bytes = EntryBytes(entry);
  if (entry.bytes > capacity_bytes_) return;
  EvictUntilFits(entry.bytes);
  used_bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  entries_[key] = lru_.begin();
}

void QueryResultCache::Insert(const std::string& sql,
                              const std::string& commit_id,
                              const columnar::Table& table) {
  sql::QueryResult result;
  result.table = table;
  Insert(sql, commit_id, result, /*has_plans=*/false);
}

void QueryResultCache::EvictUntilFits(uint64_t incoming) {
  while (!lru_.empty() && used_bytes_ + incoming > capacity_bytes_) {
    const Entry& victim = lru_.back();
    used_bytes_ -= victim.bytes;
    entries_.erase(victim.key);
    lru_.pop_back();
    evictions_->Increment();
  }
}

void QueryResultCache::Clear() {
  lru_.clear();
  entries_.clear();
  used_bytes_ = 0;
}

}  // namespace bauplan::core
