#ifndef BAUPLAN_CORE_AUDIT_LOG_H_
#define BAUPLAN_CORE_AUDIT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "storage/object_store.h"

namespace bauplan::core {

/// One recorded platform action.
struct AuditEntry {
  int64_t sequence = 0;
  uint64_t timestamp_micros = 0;
  std::string actor;
  /// "query", "run", "replay", "create_table", "write_table",
  /// "create_branch", "delete_branch", "merge".
  std::string operation;
  /// Branch/tag/commit the action targeted.
  std::string ref;
  /// Operation-specific detail (SQL text, pipeline fingerprint, ...).
  std::string detail;
  /// "ok" or the failure's status string.
  std::string outcome;

  Bytes Serialize() const;
  static Result<AuditEntry> Deserialize(const Bytes& bytes);
};

/// Append-only, durable audit trail: the paper's *Full Auditability*
/// principle ("all work and access are centralized, auditable, and
/// aligned with security and governance policies", section 2). Every
/// platform verb writes one entry; nothing is ever rewritten.
class AuditLog {
 public:
  /// Does not own `store` or `clock`.
  AuditLog(storage::ObjectStore* store, Clock* clock,
           std::string prefix = "audit");

  /// Appends one entry (sequence and timestamp are assigned here).
  Status Record(const std::string& actor, const std::string& operation,
                const std::string& ref, const std::string& detail,
                const std::string& outcome);

  /// The most recent `limit` entries, newest first (0 = all).
  Result<std::vector<AuditEntry>> Tail(size_t limit = 0) const;

  int64_t entries_recorded() const { return next_sequence_ - 1; }

 private:
  std::string EntryKey(int64_t sequence) const;

  storage::ObjectStore* store_;
  Clock* clock_;
  std::string prefix_;
  int64_t next_sequence_ = 1;
  bool loaded_ = false;
};

}  // namespace bauplan::core

#endif  // BAUPLAN_CORE_AUDIT_LOG_H_
