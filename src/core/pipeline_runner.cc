#include "core/pipeline_runner.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <set>

#include "analysis/lineage.h"
#include "columnar/serialize.h"
#include "common/hash.h"
#include "common/strings.h"
#include "core/lakehouse_source.h"
#include "expectations/expectation.h"
#include "sql/engine.h"

namespace bauplan::core {

using columnar::Table;
using observability::ScopedSpan;
using pipeline::Dag;
using pipeline::NodeKind;
using pipeline::PipelineNode;

namespace internal {

/// State one naive run's node functions share: the selection, the sizes
/// of artifacts produced so far, and the report the bodies write into.
/// `mu` serializes body writes when nodes run on a wavefront.
struct NaiveRunContext {
  const Dag* dag = nullptr;
  std::string ref;
  std::set<std::string> selected_set;
  sql::ExecOptions exec;  // execution knobs for every SQL node body
  RunReport* report = nullptr;
  std::mutex mu;
  /// Artifact name -> serialized bytes (produced this run, or estimated
  /// from catalog metadata for replayed upstreams).
  std::map<std::string, int64_t> artifact_bytes;
};

}  // namespace internal

namespace {

/// Estimated function memory for a table of `bytes`: artifact + working
/// set, floored at 256 MiB — the vertical-elasticity knob.
uint64_t MemoryForBytes(int64_t bytes) {
  uint64_t need = static_cast<uint64_t>(bytes) * 3;
  return std::max<uint64_t>(need, 256ull << 20);
}

std::vector<std::string> SelectOrAll(const Dag& dag,
                                     const std::vector<std::string>& sel) {
  if (sel.empty()) return dag.execution_order();
  return sel;
}

std::string SpillKey(const std::string& node) {
  return StrCat("spill/", node, ".tbl");
}

/// Serialized-footprint estimate of a materialized catalog table:
/// records times an ~8-bytes-per-value row width. Used to size functions
/// reading replayed upstreams, where the exact spill size is unknown but
/// the row count is right in the table metadata.
/// Does any *selected* node read `name`'s output? When nothing selected
/// consumes it, a cache hit needs no spill-store materialization — the
/// table only has to reach the run's artifact map.
bool HasSelectedConsumer(const Dag& dag,
                         const std::set<std::string>& selected_set,
                         const std::string& name) {
  for (const auto& candidate : dag.execution_order()) {
    if (selected_set.count(candidate) == 0) continue;
    for (const auto& up : dag.GetNode(candidate).upstream_nodes) {
      if (up == name) return true;
    }
  }
  return false;
}

int64_t EstimateCatalogArtifactBytes(const catalog::Catalog* catalog,
                                     const table::TableOps* ops,
                                     const std::string& ref,
                                     const std::string& table_name) {
  auto metadata_key = catalog->GetTable(ref, table_name);
  if (!metadata_key.ok()) return 0;
  auto metadata = ops->LoadMetadata(*metadata_key);
  if (!metadata.ok()) return 0;
  auto snapshot = metadata->CurrentSnapshot();
  if (!snapshot.ok()) return 0;
  int64_t row_width = 8 * metadata->schema.num_fields() + 8;
  return snapshot->total_records * row_width;
}

}  // namespace

runtime::ContainerSpec PipelineRunner::SpecForNode(
    const PipelineNode& node) {
  runtime::ContainerSpec spec;
  for (const auto& req : node.requirements.items()) {
    // Map the declared requirement onto a synthetic package whose size
    // is derived from the name (deterministic, ~5-40 MiB).
    runtime::Package pkg;
    pkg.name = req.ToString();
    pkg.size_bytes =
        5ull * 1024 * 1024 +
        (Fnv1a64(pkg.name) % (35ull * 1024 * 1024));
    spec.packages.push_back(std::move(pkg));
  }
  return spec;
}

Result<RunReport> PipelineRunner::Execute(
    const Dag& dag, const std::string& ref,
    const PipelineRunOptions& options) {
  for (const auto& name : options.selected) {
    if (!dag.HasNode(name)) {
      return Status::NotFound(StrCat("no pipeline node named '", name,
                                     "'"));
    }
  }
  spill_store_->ResetMetrics();

  // Cache keys are derived once per run, before any dispatch: execution
  // knobs are absent from them by design, so the same map serves every
  // mode below. A null pointer tells the paths caching is off entirely.
  // Trimmed runs bypass the cache both ways: a trimmed artifact's bytes
  // depend on its *downstream* consumers, which an upstream-only Merkle
  // key cannot capture, so trimmed outputs can neither serve nor be
  // served by untrimmed ones.
  const bool cache_on = cache_ != nullptr && cache_->enabled() &&
                        options.use_cache && !options.trim_unused_columns;
  cache::NodeFingerprints keys;
  if (cache_on) {
    std::vector<std::string> all = SelectOrAll(dag, options.selected);
    keys = cache::ComputeNodeFingerprints(
        dag, std::set<std::string>(all.begin(), all.end()), catalog_,
        ref);
  }
  const cache::NodeFingerprints* keys_ptr = cache_on ? &keys : nullptr;

  uint64_t run_span = 0;
  if (tracer_ != nullptr) {
    run_span = tracer_->StartSpan("run", observability::span_kind::kRun);
    tracer_->AddAttribute(run_span, "ref", ref);
    tracer_->AddAttribute(
        run_span, "mode",
        options.fused ? "fused"
                      : (options.parallelism > 1 ? "parallel_naive"
                                                 : "naive"));
    tracer_->AddAttribute(run_span, "cache",
                          cache_on ? "enabled" : "disabled");
  }

  Result<RunReport> result =
      options.fused
          ? ExecuteFused(dag, ref, SelectOrAll(dag, options.selected),
                         options.exec, options.trim_unused_columns,
                         keys_ptr, run_span)
          : (options.parallelism > 1
                 ? ExecuteParallelNaive(dag, ref,
                                        SelectOrAll(dag, options.selected),
                                        options.exec, options.parallelism,
                                        keys_ptr, run_span)
                 : ExecuteNaive(dag, ref,
                                SelectOrAll(dag, options.selected),
                                options.exec, keys_ptr, run_span));

  // Memoize what this run actually computed — post-audit only: a run
  // with a failing expectation vouches for nothing.
  if (result.ok() && cache_on && result->all_expectations_passed) {
    InsertFreshArtifacts(*result, keys);
  }

  if (tracer_ != nullptr) {
    tracer_->EndSpan(run_span);
    // Extract even on failure so aborted runs don't pile spans up in the
    // tracer; the trace only ships on success.
    observability::Trace trace = tracer_->ExtractTrace(run_span);
    if (result.ok()) result->trace = std::move(trace);
  }
  return result;
}

// --------------------------------------------------------------- fused

Result<RunReport> PipelineRunner::ExecuteFused(
    const Dag& dag, const std::string& ref,
    const std::vector<std::string>& selected,
    const sql::ExecOptions& exec, bool trim_unused_columns,
    const cache::NodeFingerprints* keys, uint64_t run_span) {
  RunReport report;
  uint64_t start = clock_->NowMicros();

  // Cross-node projection trimming (run --trim): fold the whole DAG's
  // lineage once, then hand each node the set of output columns some
  // downstream node, expectation, or terminal artifact actually reads.
  // The optimizer wraps the node's plan in a projection, and pushdown
  // carries the narrowing all the way into the scans.
  std::map<std::string, std::vector<std::string>> required_columns;
  if (trim_unused_columns) {
    pipeline::PipelineProject lineage_project("lineage");
    for (const auto& name : dag.execution_order()) {
      const PipelineNode& node = *dag.GetNode(name).node;
      Status st = node.kind == NodeKind::kSqlModel
                      ? lineage_project.AddSqlNode(node.name, node.code,
                                                   node.requirements)
                      : lineage_project.AddExpectationNode(
                            node.name, node.code, node.requirements);
      if (!st.ok()) return st;
    }
    LakehouseSource schemas(catalog_, ops_, ref);
    required_columns =
        analysis::BuildLineage(lineage_project, schemas)
            .RequiredOutputColumns();
  }

  // One function for the whole DAG: union of all requirements, memory
  // sized once the inputs are known (use a conservative default).
  runtime::ContainerSpec spec;
  std::set<std::string> seen_packages;
  for (const auto& name : selected) {
    auto node_spec = SpecForNode(*dag.GetNode(name).node);
    for (auto& pkg : node_spec.packages) {
      if (seen_packages.insert(pkg.name).second) {
        spec.packages.push_back(std::move(pkg));
      }
    }
  }

  runtime::FunctionRequest request;
  request.name = "fused_dag";
  request.spec = std::move(spec);
  request.memory_bytes = 4ull << 30;
  request.output_artifact = "fused_dag_output";
  // Keep the DAG's container warm between iterations: repeated `bauplan
  // run` invocations in a dev loop pay only the warm dispatch.
  request.keep_warm = true;
  std::set<std::string> selected_set(selected.begin(), selected.end());

  uint64_t fused_span = 0;
  if (tracer_ != nullptr) {
    fused_span = tracer_->StartSpan(
        "fused_dag", observability::span_kind::kInvocation, run_span);
  }

  request.body = [&]() -> Status {
    // All intermediates live in the source overlay; the engine pushes
    // WHERE filters and projections into the lakehouse scans.
    LakehouseSource source(catalog_, ops_, ref);
    for (const auto& name : dag.execution_order()) {
      if (selected_set.count(name) == 0) continue;
      const PipelineNode& node = *dag.GetNode(name).node;
      NodeExecution node_report;
      node_report.name = name;
      node_report.kind = node.kind;
      // Fused hits skip the node's work inside the shared function (the
      // single invocation itself still runs — nothing is dispatched per
      // node in this mode, so skipped_invocations stays untouched).
      if (keys != nullptr && !keys->Find(name).empty()) {
        std::optional<cache::CachedArtifact> hit;
        {
          ScopedSpan probe(tracer_, name,
                           observability::span_kind::kCacheProbe,
                           fused_span);
          hit = cache_->Lookup(keys->Find(name));
        }
        if (hit.has_value()) {
          node_report.cache_hit = true;
          node_report.output_rows = hit->output_rows;
          if (node.kind == NodeKind::kSqlModel) {
            ScopedSpan mat(tracer_, name,
                           observability::span_kind::kCacheMaterialize,
                           fused_span);
            report.artifacts[name] = hit->table;
            source.AddOverlayTable(name, std::move(hit->table));
          } else {
            node_report.expectation_passed = hit->expectation_passed;
            node_report.details = hit->details;
            if (!hit->expectation_passed) {
              report.all_expectations_passed = false;
            }
          }
          report.nodes.push_back(std::move(node_report));
          continue;
        }
      }
      if (node.kind == NodeKind::kSqlModel) {
        ScopedSpan sql_span(tracer_, name,
                            observability::span_kind::kSql, fused_span);
        sql::QueryOptions qopts;
        qopts.exec = exec;
        if (auto it = required_columns.find(name);
            it != required_columns.end()) {
          qopts.optimizer.required_output_columns = it->second;
        }
        auto result = sql::RunQuery(node.code, source, &source, qopts);
        if (!result.ok()) {
          return result.status().WithContext(
              StrCat("node '", name, "'"));
        }
        node_report.output_rows = result->table.num_rows();
        report.artifacts[name] = result->table;
        source.AddOverlayTable(name, std::move(result->table));
      } else {
        ScopedSpan exp_span(tracer_, name,
                            observability::span_kind::kExpectation,
                            fused_span);
        BAUPLAN_ASSIGN_OR_RETURN(std::string target,
                                 node.ExpectationTarget());
        BAUPLAN_ASSIGN_OR_RETURN(
            expectations::Expectation expectation,
            expectations::ParseExpectation(node.code));
        BAUPLAN_ASSIGN_OR_RETURN(Table table,
                                 source.ScanTable(target, {}, {}));
        BAUPLAN_ASSIGN_OR_RETURN(auto outcome,
                                 expectation.Check(table));
        node_report.expectation_passed = outcome.passed;
        node_report.details = outcome.details;
        node_report.output_rows = table.num_rows();
        if (!outcome.passed) report.all_expectations_passed = false;
      }
      report.nodes.push_back(std::move(node_report));
    }
    return Status::OK();
  };

  Result<runtime::InvocationReport> invocation =
      executor_->Invoke(request);
  if (tracer_ != nullptr) tracer_->EndSpan(fused_span);
  BAUPLAN_RETURN_NOT_OK(invocation.status());
  NodeExecution fused;
  fused.name = invocation->name;
  fused.ApplyInvocation(*invocation);
  if (tracer_ != nullptr) {
    tracer_->AddAttribute(fused_span, "worker",
                          StrCat(invocation->worker));
  }
  report.fused = std::move(fused);
  report.total_micros = clock_->NowMicros() - start;
  report.spill_metrics = spill_store_->metrics();
  return report;
}

// --------------------------------------------------------------- naive

runtime::FunctionRequest PipelineRunner::BuildNaiveRequest(
    internal::NaiveRunContext& ctx, const std::string& name,
    NodeExecution* node_report, uint64_t node_span) {
  const pipeline::DagNode& dag_node = ctx.dag->GetNode(name);
  const PipelineNode& node = *dag_node.node;
  node_report->name = name;
  node_report->kind = node.kind;

  // Each node is its own serverless function reading inputs through
  // the object store — the isomorphic mapping of plan to execution.
  // Every upstream artifact is listed (placement and transfer see the
  // full input set, not just the last upstream).
  runtime::FunctionRequest request;
  request.name = name;
  request.spec = SpecForNode(node);
  request.output_artifact = SpillKey(name);

  int64_t input_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(ctx.mu);
    for (const auto& up : dag_node.upstream_nodes) {
      bool up_selected = ctx.selected_set.count(up) > 0;
      auto it = ctx.artifact_bytes.find(up);
      int64_t bytes = it != ctx.artifact_bytes.end() ? it->second : 0;
      if (it == ctx.artifact_bytes.end() && !up_selected) {
        bytes = EstimateCatalogArtifactBytes(catalog_, ops_, ctx.ref, up);
        ctx.artifact_bytes[up] = bytes;
      }
      input_bytes += bytes;
      // A replayed upstream lives in the catalog, not at any worker, so
      // its key never matches a recorded artifact — reading it always
      // pays the object-storage transfer.
      request.inputs.push_back(runtime::ArtifactRef{
          up_selected ? SpillKey(up) : StrCat("catalog/", up),
          static_cast<uint64_t>(bytes)});
    }
  }
  request.memory_bytes = MemoryForBytes(input_bytes);

  request.body = [this, &ctx, &dag_node, &node, name, node_report,
                  node_span]() -> Status {
    // Assemble inputs: source tables scanned in full (no pushdown —
    // the naive plan maps each logical op to one function), upstream
    // artifacts fetched from the spill store.
    sql::MemoryTableProvider inputs;
    for (const auto& table_name : dag_node.source_tables) {
      ScopedSpan scan_span(tracer_, table_name,
                           observability::span_kind::kScan, node_span);
      BAUPLAN_ASSIGN_OR_RETURN(std::string metadata_key,
                               catalog_->GetTable(ctx.ref, table_name));
      BAUPLAN_ASSIGN_OR_RETURN(Table table,
                               ops_->ScanTable(metadata_key));
      inputs.AddTable(table_name, std::move(table));
    }
    for (const auto& up : dag_node.upstream_nodes) {
      if (ctx.selected_set.count(up) > 0) {
        ScopedSpan spill_span(tracer_, StrCat("get ", SpillKey(up)),
                              observability::span_kind::kSpill,
                              node_span);
        BAUPLAN_ASSIGN_OR_RETURN(Bytes bytes,
                                 spill_store_->Get(SpillKey(up)));
        BAUPLAN_ASSIGN_OR_RETURN(Table table,
                                 columnar::DeserializeTable(bytes));
        inputs.AddTable(up, std::move(table));
      } else {
        // Replay subset: the upstream artifact was materialized by the
        // original run; read it from the catalog.
        ScopedSpan scan_span(tracer_, up,
                             observability::span_kind::kScan, node_span);
        BAUPLAN_ASSIGN_OR_RETURN(std::string metadata_key,
                                 catalog_->GetTable(ctx.ref, up));
        BAUPLAN_ASSIGN_OR_RETURN(Table table,
                                 ops_->ScanTable(metadata_key));
        inputs.AddTable(up, std::move(table));
      }
    }

    if (node.kind == NodeKind::kSqlModel) {
      sql::QueryOptions qopts;
      qopts.exec = ctx.exec;
      // No scan pushdown in the naive mapping.
      qopts.optimizer.pushdown_predicates = false;
      qopts.optimizer.pushdown_projections = false;
      Result<sql::QueryResult> result = [&] {
        ScopedSpan sql_span(tracer_, name,
                            observability::span_kind::kSql, node_span);
        return sql::RunQuery(node.code, inputs, &inputs, qopts);
      }();
      BAUPLAN_RETURN_NOT_OK(result.status());
      node_report->output_rows = result->table.num_rows();
      // Spill the artifact for downstream functions.
      Bytes payload = columnar::SerializeTable(result->table);
      int64_t payload_bytes = static_cast<int64_t>(payload.size());
      {
        ScopedSpan spill_span(tracer_, StrCat("put ", SpillKey(name)),
                              observability::span_kind::kSpill,
                              node_span);
        BAUPLAN_RETURN_NOT_OK(
            spill_store_->Put(SpillKey(name), std::move(payload)));
      }
      std::lock_guard<std::mutex> lock(ctx.mu);
      ctx.artifact_bytes[name] = payload_bytes;
      ctx.report->artifacts[name] = std::move(result->table);
    } else {
      ScopedSpan exp_span(tracer_, name,
                          observability::span_kind::kExpectation,
                          node_span);
      BAUPLAN_ASSIGN_OR_RETURN(std::string target,
                               node.ExpectationTarget());
      BAUPLAN_ASSIGN_OR_RETURN(
          expectations::Expectation expectation,
          expectations::ParseExpectation(node.code));
      BAUPLAN_ASSIGN_OR_RETURN(Table table,
                               inputs.ScanTable(target, {}, {}));
      BAUPLAN_ASSIGN_OR_RETURN(auto outcome, expectation.Check(table));
      node_report->expectation_passed = outcome.passed;
      node_report->details = outcome.details;
      node_report->output_rows = table.num_rows();
      if (!outcome.passed) {
        std::lock_guard<std::mutex> lock(ctx.mu);
        ctx.report->all_expectations_passed = false;
      }
    }
    return Status::OK();
  };
  return request;
}

bool PipelineRunner::TryServeFromCache(
    internal::NaiveRunContext& ctx, const cache::NodeFingerprints* keys,
    const std::string& name, bool has_selected_consumer,
    NodeExecution* node_report, uint64_t node_span) {
  if (keys == nullptr) return false;
  const std::string& key = keys->Find(name);
  if (key.empty()) return false;

  const PipelineNode& node = *ctx.dag->GetNode(name).node;
  std::optional<cache::CachedArtifact> hit;
  {
    ScopedSpan probe(tracer_, name,
                     observability::span_kind::kCacheProbe, node_span);
    hit = cache_->Lookup(key);
  }
  if (!hit.has_value()) return false;

  if (node.kind == NodeKind::kSqlModel && has_selected_consumer) {
    // Downstream functions fetch their inputs from the spill store;
    // re-materialize the cached table under the node's spill key so
    // their bodies stay oblivious to where it came from. If the put
    // fails, fall back to executing the node — cache trouble never
    // fails a run.
    Bytes payload = columnar::SerializeTable(hit->table);
    int64_t payload_bytes = static_cast<int64_t>(payload.size());
    Status put_status = [&] {
      ScopedSpan mat(tracer_, StrCat("put ", SpillKey(name)),
                     observability::span_kind::kCacheMaterialize,
                     node_span);
      return spill_store_->Put(SpillKey(name), std::move(payload));
    }();
    if (!put_status.ok()) return false;
    std::lock_guard<std::mutex> lock(ctx.mu);
    ctx.artifact_bytes[name] = payload_bytes;
  }

  node_report->name = name;
  node_report->kind = node.kind;
  node_report->cache_hit = true;
  node_report->output_rows = hit->output_rows;
  {
    std::lock_guard<std::mutex> lock(ctx.mu);
    if (node.kind == NodeKind::kSqlModel) {
      ctx.report->artifacts[name] = std::move(hit->table);
    } else {
      node_report->expectation_passed = hit->expectation_passed;
      node_report->details = hit->details;
      if (!hit->expectation_passed) {
        ctx.report->all_expectations_passed = false;
      }
    }
  }
  if (skipped_invocations_ != nullptr) skipped_invocations_->Increment();
  return true;
}

void PipelineRunner::InsertFreshArtifacts(
    const RunReport& report, const cache::NodeFingerprints& keys) {
  for (const NodeExecution& node : report.nodes) {
    if (node.cache_hit) continue;
    const std::string& key = keys.Find(node.name);
    if (key.empty()) continue;
    cache::CachedArtifact artifact;
    artifact.kind = node.kind;
    artifact.output_rows = node.output_rows;
    if (node.kind == NodeKind::kSqlModel) {
      auto it = report.artifacts.find(node.name);
      if (it == report.artifacts.end()) continue;
      artifact.table = it->second;
    } else {
      artifact.expectation_passed = node.expectation_passed;
      artifact.details = node.details;
    }
    cache_->Insert(key, artifact);
  }
}

Result<RunReport> PipelineRunner::ExecuteNaive(
    const Dag& dag, const std::string& ref,
    const std::vector<std::string>& selected,
    const sql::ExecOptions& exec, const cache::NodeFingerprints* keys,
    uint64_t run_span) {
  RunReport report;
  uint64_t start = clock_->NowMicros();

  internal::NaiveRunContext ctx;
  ctx.dag = &dag;
  ctx.ref = ref;
  ctx.selected_set = std::set<std::string>(selected.begin(),
                                           selected.end());
  ctx.exec = exec;
  ctx.report = &report;

  for (const auto& name : dag.execution_order()) {
    if (ctx.selected_set.count(name) == 0) continue;
    NodeExecution node_report;
    // Sequential walk: the node span brackets the whole invocation
    // (placement, startup, body) on the shared clock.
    uint64_t node_span = 0;
    if (tracer_ != nullptr) {
      node_span = tracer_->StartSpan(
          name, observability::span_kind::kNode, run_span);
    }
    if (TryServeFromCache(ctx, keys, name,
                          HasSelectedConsumer(dag, ctx.selected_set,
                                              name),
                          &node_report, node_span)) {
      if (tracer_ != nullptr) {
        tracer_->AddAttribute(node_span, "cache_hit", "true");
        tracer_->EndSpan(node_span);
      }
      report.nodes.push_back(std::move(node_report));
      continue;
    }
    runtime::FunctionRequest request =
        BuildNaiveRequest(ctx, name, &node_report, node_span);
    Result<runtime::InvocationReport> invocation =
        executor_->Invoke(request);
    if (tracer_ != nullptr) tracer_->EndSpan(node_span);
    BAUPLAN_RETURN_NOT_OK(invocation.status());
    node_report.ApplyInvocation(*invocation);
    if (tracer_ != nullptr) {
      tracer_->AddAttribute(node_span, "worker",
                            StrCat(invocation->worker));
    }
    report.nodes.push_back(std::move(node_report));
  }

  report.total_micros = clock_->NowMicros() - start;
  report.spill_metrics = spill_store_->metrics();
  return report;
}

Result<RunReport> PipelineRunner::ExecuteParallelNaive(
    const Dag& dag, const std::string& ref,
    const std::vector<std::string>& selected,
    const sql::ExecOptions& exec, int parallelism,
    const cache::NodeFingerprints* keys, uint64_t run_span) {
  RunReport report;
  uint64_t start = clock_->NowMicros();

  internal::NaiveRunContext ctx;
  ctx.dag = &dag;
  ctx.ref = ref;
  ctx.selected_set = std::set<std::string>(selected.begin(),
                                           selected.end());
  ctx.exec = exec;
  ctx.report = &report;

  // Wave bodies run on forked timelines only when the executor's clock
  // can fork; otherwise InvokeWave degrades to sequential invocations on
  // the shared clock and span intervals need no queue fixup.
  const bool forked_waves =
      dynamic_cast<ForkableClock*>(clock_) != nullptr;

  // Ready-set bookkeeping: indegree among selected nodes only (replayed
  // upstreams are already materialized, hence never block).
  std::map<std::string, int> indegree;
  std::map<std::string, std::vector<std::string>> downstream;
  for (const auto& name : dag.execution_order()) {
    if (ctx.selected_set.count(name) == 0) continue;
    int degree = 0;
    for (const auto& up : dag.GetNode(name).upstream_nodes) {
      if (ctx.selected_set.count(up) == 0) continue;
      ++degree;
      downstream[up].push_back(name);
    }
    indegree[name] = degree;
  }

  // NodeExecutions live in a deque so function bodies hold stable
  // pointers across waves.
  std::deque<NodeExecution> slots;
  std::map<std::string, NodeExecution*> slot_of;
  std::map<std::string, uint64_t> span_of;
  std::set<std::string> dispatched;
  std::set<std::string> probed;  // each node probes the cache only once
  size_t completed = 0;
  int wave_index = 0;

  while (completed < indegree.size()) {
    // Serve ready cache hits before forming the wave: a hit completes
    // its node with no container or memory reservation, which can
    // unblock further hits downstream — a fully-warm cone drains right
    // here without dispatching a single wave. Hit spans parent under
    // the run span (they belong to no wave); missed nodes keep their
    // pre-created span and re-parent under the wave that dispatches
    // them, exactly like a resource bounce.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (const auto& name : dag.execution_order()) {
        auto it = indegree.find(name);
        if (it == indegree.end() || it->second > 0) continue;
        if (dispatched.count(name) > 0 || probed.count(name) > 0) {
          continue;
        }
        if (keys == nullptr || keys->Find(name).empty()) continue;
        probed.insert(name);
        NodeExecution*& slot = slot_of[name];
        if (slot == nullptr) {
          slots.emplace_back();
          slot = &slots.back();
        }
        uint64_t node_span = 0;
        if (tracer_ != nullptr) {
          uint64_t& span = span_of[name];
          if (span == 0) {
            span = tracer_->StartSpan(
                name, observability::span_kind::kNode, run_span);
          }
          node_span = span;
        }
        if (!TryServeFromCache(ctx, keys, name,
                               HasSelectedConsumer(dag, ctx.selected_set,
                                                   name),
                               slot, node_span)) {
          continue;  // dispatches in a wave; span interval set there
        }
        if (tracer_ != nullptr) {
          tracer_->AddAttribute(node_span, "cache_hit", "true");
          tracer_->EndSpan(node_span);
        }
        dispatched.insert(name);
        ++completed;
        for (const auto& down : downstream[name]) --indegree[down];
        progressed = true;
      }
    }
    if (completed >= indegree.size()) break;

    uint64_t wave_start = clock_->NowMicros();
    uint64_t wave_span = 0;
    if (tracer_ != nullptr) {
      wave_span = tracer_->StartSpan(
          StrCat("wave_", wave_index),
          observability::span_kind::kWave, run_span);
    }
    ++wave_index;

    // The next wave: every undispatched node whose selected upstreams
    // all finished, in execution order (deterministic).
    std::vector<runtime::FunctionRequest> ready;
    for (const auto& name : dag.execution_order()) {
      auto it = indegree.find(name);
      if (it == indegree.end() || it->second > 0) continue;
      if (dispatched.count(name) > 0) continue;
      NodeExecution*& slot = slot_of[name];
      if (slot == nullptr) {
        slots.emplace_back();
        slot = &slots.back();
      }
      uint64_t node_span = 0;
      if (tracer_ != nullptr) {
        uint64_t& span = span_of[name];
        if (span == 0) {
          // Pre-created: the member's final interval is only known once
          // the wave completes (per-worker serialization).
          span = tracer_->StartSpan(
              name, observability::span_kind::kNode, wave_span);
        } else {
          // Bounced in an earlier wave; it re-dispatches under this one.
          tracer_->SetSpanParent(span, wave_span);
        }
        node_span = span;
      }
      ready.push_back(BuildNaiveRequest(ctx, name, slot, node_span));
      dispatched.insert(name);
    }
    if (ready.empty()) {
      if (tracer_ != nullptr) tracer_->EndSpan(wave_span);
      return Status::Internal(
          "pipeline wavefront stalled with nodes unfinished");
    }

    Result<runtime::WaveReport> wave =
        executor_->InvokeWave(std::move(ready), parallelism);
    if (tracer_ != nullptr) tracer_->EndSpan(wave_span);
    BAUPLAN_RETURN_NOT_OK(wave.status());

    // Degraded (sequential) waves run members back to back; track the
    // running offset to place their spans.
    uint64_t sequential_offset = 0;
    for (runtime::InvocationReport& invocation : wave->reports) {
      const std::string node_name = invocation.name;
      if (tracer_ != nullptr) {
        uint64_t span = span_of.at(node_name);
        uint64_t begin = forked_waves
                             ? wave_start + invocation.queue_micros
                             : wave_start + sequential_offset;
        uint64_t end = forked_waves
                           ? wave_start + invocation.total_micros
                           : begin + invocation.total_micros;
        tracer_->SetSpanInterval(span, begin, end);
        if (forked_waves && invocation.queue_micros > 0) {
          // Body children were stamped on a fork starting at
          // wave_start + prelude; slide them to the member's real slot.
          tracer_->ShiftDescendants(
              span, static_cast<int64_t>(invocation.queue_micros));
        }
        tracer_->AddAttribute(span, "worker", StrCat(invocation.worker));
        sequential_offset += invocation.total_micros;
      }
      slot_of.at(node_name)->ApplyInvocation(invocation);
      ++completed;
      for (const auto& down : downstream[node_name]) --indegree[down];
    }
    // Members bounced on resources stay ready; rebuild them next wave.
    for (const runtime::FunctionRequest& bounced : wave->deferred) {
      dispatched.erase(bounced.name);
    }
  }

  // Merge per-node reports deterministically, in execution order — the
  // same order the sequential walk emits.
  for (const auto& name : dag.execution_order()) {
    auto it = slot_of.find(name);
    if (it == slot_of.end()) continue;
    report.nodes.push_back(std::move(*it->second));
  }

  report.total_micros = clock_->NowMicros() - start;
  report.spill_metrics = spill_store_->metrics();
  return report;
}

}  // namespace bauplan::core
