#include "core/pipeline_runner.h"

#include <algorithm>
#include <set>

#include "columnar/serialize.h"
#include "common/hash.h"
#include "common/strings.h"
#include "core/lakehouse_source.h"
#include "expectations/expectation.h"
#include "sql/engine.h"

namespace bauplan::core {

using columnar::Table;
using pipeline::Dag;
using pipeline::NodeKind;
using pipeline::PipelineNode;

namespace {

/// Estimated function memory for a table of `bytes`: artifact + working
/// set, floored at 256 MiB — the vertical-elasticity knob.
uint64_t MemoryForBytes(int64_t bytes) {
  uint64_t need = static_cast<uint64_t>(bytes) * 3;
  return std::max<uint64_t>(need, 256ull << 20);
}

std::vector<std::string> SelectOrAll(const Dag& dag,
                                     const std::vector<std::string>& sel) {
  if (sel.empty()) return dag.execution_order();
  return sel;
}

}  // namespace

runtime::ContainerSpec PipelineRunner::SpecForNode(
    const PipelineNode& node) {
  runtime::ContainerSpec spec;
  for (const auto& req : node.requirements.items()) {
    // Map the declared requirement onto a synthetic package whose size
    // is derived from the name (deterministic, ~5-40 MiB).
    runtime::Package pkg;
    pkg.name = req.ToString();
    pkg.size_bytes =
        5ull * 1024 * 1024 +
        (Fnv1a64(pkg.name) % (35ull * 1024 * 1024));
    spec.packages.push_back(std::move(pkg));
  }
  return spec;
}

Result<PipelineRunReport> PipelineRunner::Execute(
    const Dag& dag, const std::string& ref,
    const PipelineRunOptions& options) {
  for (const auto& name : options.selected) {
    if (!dag.HasNode(name)) {
      return Status::NotFound(StrCat("no pipeline node named '", name,
                                     "'"));
    }
  }
  spill_store_->ResetMetrics();
  if (options.fused) {
    return ExecuteFused(dag, ref, SelectOrAll(dag, options.selected));
  }
  return ExecuteNaive(dag, ref, SelectOrAll(dag, options.selected));
}

// --------------------------------------------------------------- fused

Result<PipelineRunReport> PipelineRunner::ExecuteFused(
    const Dag& dag, const std::string& ref,
    const std::vector<std::string>& selected) {
  PipelineRunReport report;
  uint64_t start = clock_->NowMicros();

  // One function for the whole DAG: union of all requirements, memory
  // sized once the inputs are known (use a conservative default).
  runtime::ContainerSpec spec;
  std::set<std::string> seen_packages;
  for (const auto& name : selected) {
    auto node_spec = SpecForNode(*dag.GetNode(name).node);
    for (auto& pkg : node_spec.packages) {
      if (seen_packages.insert(pkg.name).second) {
        spec.packages.push_back(std::move(pkg));
      }
    }
  }

  runtime::FunctionRequest request;
  request.name = "fused_dag";
  request.spec = std::move(spec);
  request.memory_bytes = 4ull << 30;
  request.output_artifact = "fused_dag_output";
  // Keep the DAG's container warm between iterations: repeated `bauplan
  // run` invocations in a dev loop pay only the warm dispatch.
  request.keep_warm = true;
  std::set<std::string> selected_set(selected.begin(), selected.end());

  Status body_status = Status::OK();
  request.body = [&]() -> Status {
    // All intermediates live in the source overlay; the engine pushes
    // WHERE filters and projections into the lakehouse scans.
    LakehouseSource source(catalog_, ops_, ref);
    for (const auto& name : dag.execution_order()) {
      if (selected_set.count(name) == 0) continue;
      const PipelineNode& node = *dag.GetNode(name).node;
      NodeReport node_report;
      node_report.name = name;
      node_report.kind = node.kind;
      if (node.kind == NodeKind::kSqlModel) {
        auto result = sql::RunQuery(node.code, source, &source);
        if (!result.ok()) {
          return result.status().WithContext(
              StrCat("node '", name, "'"));
        }
        node_report.output_rows = result->table.num_rows();
        report.artifacts[name] = result->table;
        source.AddOverlayTable(name, std::move(result->table));
      } else {
        BAUPLAN_ASSIGN_OR_RETURN(std::string target,
                                 node.ExpectationTarget());
        BAUPLAN_ASSIGN_OR_RETURN(
            expectations::Expectation expectation,
            expectations::ParseExpectation(node.code));
        BAUPLAN_ASSIGN_OR_RETURN(Table table,
                                 source.ScanTable(target, {}, {}));
        BAUPLAN_ASSIGN_OR_RETURN(auto outcome,
                                 expectation.Check(table));
        node_report.expectation_passed = outcome.passed;
        node_report.details = outcome.details;
        node_report.output_rows = table.num_rows();
        if (!outcome.passed) report.all_expectations_passed = false;
      }
      report.nodes.push_back(std::move(node_report));
    }
    return Status::OK();
  };

  BAUPLAN_ASSIGN_OR_RETURN(runtime::InvocationReport invocation,
                           executor_->Invoke(request));
  if (!report.nodes.empty()) {
    report.nodes.front().invocation = invocation;
  }
  (void)body_status;
  report.total_micros = clock_->NowMicros() - start;
  report.spill_metrics = spill_store_->metrics();
  return report;
}

// --------------------------------------------------------------- naive

Result<PipelineRunReport> PipelineRunner::ExecuteNaive(
    const Dag& dag, const std::string& ref,
    const std::vector<std::string>& selected) {
  PipelineRunReport report;
  uint64_t start = clock_->NowMicros();
  std::set<std::string> selected_set(selected.begin(), selected.end());

  // Spill keys of intermediates produced so far this run.
  auto spill_key = [](const std::string& node) {
    return StrCat("spill/", node, ".tbl");
  };
  std::map<std::string, int64_t> artifact_bytes;

  for (const auto& name : dag.execution_order()) {
    if (selected_set.count(name) == 0) continue;
    const pipeline::DagNode& dag_node = dag.GetNode(name);
    const PipelineNode& node = *dag_node.node;

    NodeReport node_report;
    node_report.name = name;
    node_report.kind = node.kind;

    // Each node is its own serverless function reading inputs through
    // the object store — the isomorphic mapping of plan to execution.
    runtime::FunctionRequest request;
    request.name = name;
    request.spec = SpecForNode(node);
    std::string input_artifact;
    int64_t input_bytes = 0;
    for (const auto& up : dag_node.upstream_nodes) {
      input_artifact = spill_key(up);
      auto it = artifact_bytes.find(up);
      if (it != artifact_bytes.end()) input_bytes += it->second;
    }
    request.input_artifact = input_artifact;
    request.input_bytes = static_cast<uint64_t>(input_bytes);
    request.memory_bytes = MemoryForBytes(input_bytes);
    request.output_artifact = spill_key(name);

    Status node_status = Status::OK();
    request.body = [&]() -> Status {
      // Assemble inputs: source tables scanned in full (no pushdown —
      // the naive plan maps each logical op to one function), upstream
      // artifacts fetched from the spill store.
      sql::MemoryTableProvider inputs;
      for (const auto& table_name : dag_node.source_tables) {
        BAUPLAN_ASSIGN_OR_RETURN(std::string metadata_key,
                                 catalog_->GetTable(ref, table_name));
        BAUPLAN_ASSIGN_OR_RETURN(Table table,
                                 ops_->ScanTable(metadata_key));
        inputs.AddTable(table_name, std::move(table));
      }
      for (const auto& up : dag_node.upstream_nodes) {
        if (selected_set.count(up) > 0) {
          BAUPLAN_ASSIGN_OR_RETURN(Bytes bytes,
                                   spill_store_->Get(spill_key(up)));
          BAUPLAN_ASSIGN_OR_RETURN(Table table,
                                   columnar::DeserializeTable(bytes));
          inputs.AddTable(up, std::move(table));
        } else {
          // Replay subset: the upstream artifact was materialized by the
          // original run; read it from the catalog.
          BAUPLAN_ASSIGN_OR_RETURN(std::string metadata_key,
                                   catalog_->GetTable(ref, up));
          BAUPLAN_ASSIGN_OR_RETURN(Table table,
                                   ops_->ScanTable(metadata_key));
          inputs.AddTable(up, std::move(table));
        }
      }

      if (node.kind == NodeKind::kSqlModel) {
        sql::QueryOptions qopts;
        // No scan pushdown in the naive mapping.
        qopts.optimizer.pushdown_predicates = false;
        qopts.optimizer.pushdown_projections = false;
        BAUPLAN_ASSIGN_OR_RETURN(
            sql::QueryResult result,
            sql::RunQuery(node.code, inputs, &inputs, qopts));
        node_report.output_rows = result.table.num_rows();
        // Spill the artifact for downstream functions.
        Bytes payload = columnar::SerializeTable(result.table);
        artifact_bytes[name] = static_cast<int64_t>(payload.size());
        BAUPLAN_RETURN_NOT_OK(
            spill_store_->Put(spill_key(name), std::move(payload)));
        report.artifacts[name] = std::move(result.table);
      } else {
        BAUPLAN_ASSIGN_OR_RETURN(std::string target,
                                 node.ExpectationTarget());
        BAUPLAN_ASSIGN_OR_RETURN(
            expectations::Expectation expectation,
            expectations::ParseExpectation(node.code));
        BAUPLAN_ASSIGN_OR_RETURN(Table table,
                                 inputs.ScanTable(target, {}, {}));
        BAUPLAN_ASSIGN_OR_RETURN(auto outcome, expectation.Check(table));
        node_report.expectation_passed = outcome.passed;
        node_report.details = outcome.details;
        node_report.output_rows = table.num_rows();
        if (!outcome.passed) report.all_expectations_passed = false;
      }
      return Status::OK();
    };

    BAUPLAN_ASSIGN_OR_RETURN(node_report.invocation,
                             executor_->Invoke(request));
    (void)node_status;
    report.nodes.push_back(std::move(node_report));
  }

  report.total_micros = clock_->NowMicros() - start;
  report.spill_metrics = spill_store_->metrics();
  return report;
}

}  // namespace bauplan::core
