#include "core/pipeline_runner.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <set>

#include "columnar/serialize.h"
#include "common/hash.h"
#include "common/strings.h"
#include "core/lakehouse_source.h"
#include "expectations/expectation.h"
#include "sql/engine.h"

namespace bauplan::core {

using columnar::Table;
using pipeline::Dag;
using pipeline::NodeKind;
using pipeline::PipelineNode;

namespace internal {

/// State one naive run's node functions share: the selection, the sizes
/// of artifacts produced so far, and the report the bodies write into.
/// `mu` serializes body writes when nodes run on a wavefront.
struct NaiveRunContext {
  const Dag* dag = nullptr;
  std::string ref;
  std::set<std::string> selected_set;
  PipelineRunReport* report = nullptr;
  std::mutex mu;
  /// Artifact name -> serialized bytes (produced this run, or estimated
  /// from catalog metadata for replayed upstreams).
  std::map<std::string, int64_t> artifact_bytes;
};

}  // namespace internal

namespace {

/// Estimated function memory for a table of `bytes`: artifact + working
/// set, floored at 256 MiB — the vertical-elasticity knob.
uint64_t MemoryForBytes(int64_t bytes) {
  uint64_t need = static_cast<uint64_t>(bytes) * 3;
  return std::max<uint64_t>(need, 256ull << 20);
}

std::vector<std::string> SelectOrAll(const Dag& dag,
                                     const std::vector<std::string>& sel) {
  if (sel.empty()) return dag.execution_order();
  return sel;
}

std::string SpillKey(const std::string& node) {
  return StrCat("spill/", node, ".tbl");
}

/// Serialized-footprint estimate of a materialized catalog table:
/// records times an ~8-bytes-per-value row width. Used to size functions
/// reading replayed upstreams, where the exact spill size is unknown but
/// the row count is right in the table metadata.
int64_t EstimateCatalogArtifactBytes(const catalog::Catalog* catalog,
                                     const table::TableOps* ops,
                                     const std::string& ref,
                                     const std::string& table_name) {
  auto metadata_key = catalog->GetTable(ref, table_name);
  if (!metadata_key.ok()) return 0;
  auto metadata = ops->LoadMetadata(*metadata_key);
  if (!metadata.ok()) return 0;
  auto snapshot = metadata->CurrentSnapshot();
  if (!snapshot.ok()) return 0;
  int64_t row_width = 8 * metadata->schema.num_fields() + 8;
  return snapshot->total_records * row_width;
}

}  // namespace

runtime::ContainerSpec PipelineRunner::SpecForNode(
    const PipelineNode& node) {
  runtime::ContainerSpec spec;
  for (const auto& req : node.requirements.items()) {
    // Map the declared requirement onto a synthetic package whose size
    // is derived from the name (deterministic, ~5-40 MiB).
    runtime::Package pkg;
    pkg.name = req.ToString();
    pkg.size_bytes =
        5ull * 1024 * 1024 +
        (Fnv1a64(pkg.name) % (35ull * 1024 * 1024));
    spec.packages.push_back(std::move(pkg));
  }
  return spec;
}

Result<PipelineRunReport> PipelineRunner::Execute(
    const Dag& dag, const std::string& ref,
    const PipelineRunOptions& options) {
  for (const auto& name : options.selected) {
    if (!dag.HasNode(name)) {
      return Status::NotFound(StrCat("no pipeline node named '", name,
                                     "'"));
    }
  }
  spill_store_->ResetMetrics();
  if (options.fused) {
    return ExecuteFused(dag, ref, SelectOrAll(dag, options.selected));
  }
  if (options.parallelism > 1) {
    return ExecuteParallelNaive(dag, ref,
                                SelectOrAll(dag, options.selected),
                                options.parallelism);
  }
  return ExecuteNaive(dag, ref, SelectOrAll(dag, options.selected));
}

// --------------------------------------------------------------- fused

Result<PipelineRunReport> PipelineRunner::ExecuteFused(
    const Dag& dag, const std::string& ref,
    const std::vector<std::string>& selected) {
  PipelineRunReport report;
  uint64_t start = clock_->NowMicros();

  // One function for the whole DAG: union of all requirements, memory
  // sized once the inputs are known (use a conservative default).
  runtime::ContainerSpec spec;
  std::set<std::string> seen_packages;
  for (const auto& name : selected) {
    auto node_spec = SpecForNode(*dag.GetNode(name).node);
    for (auto& pkg : node_spec.packages) {
      if (seen_packages.insert(pkg.name).second) {
        spec.packages.push_back(std::move(pkg));
      }
    }
  }

  runtime::FunctionRequest request;
  request.name = "fused_dag";
  request.spec = std::move(spec);
  request.memory_bytes = 4ull << 30;
  request.output_artifact = "fused_dag_output";
  // Keep the DAG's container warm between iterations: repeated `bauplan
  // run` invocations in a dev loop pay only the warm dispatch.
  request.keep_warm = true;
  std::set<std::string> selected_set(selected.begin(), selected.end());

  request.body = [&]() -> Status {
    // All intermediates live in the source overlay; the engine pushes
    // WHERE filters and projections into the lakehouse scans.
    LakehouseSource source(catalog_, ops_, ref);
    for (const auto& name : dag.execution_order()) {
      if (selected_set.count(name) == 0) continue;
      const PipelineNode& node = *dag.GetNode(name).node;
      NodeReport node_report;
      node_report.name = name;
      node_report.kind = node.kind;
      if (node.kind == NodeKind::kSqlModel) {
        auto result = sql::RunQuery(node.code, source, &source);
        if (!result.ok()) {
          return result.status().WithContext(
              StrCat("node '", name, "'"));
        }
        node_report.output_rows = result->table.num_rows();
        report.artifacts[name] = result->table;
        source.AddOverlayTable(name, std::move(result->table));
      } else {
        BAUPLAN_ASSIGN_OR_RETURN(std::string target,
                                 node.ExpectationTarget());
        BAUPLAN_ASSIGN_OR_RETURN(
            expectations::Expectation expectation,
            expectations::ParseExpectation(node.code));
        BAUPLAN_ASSIGN_OR_RETURN(Table table,
                                 source.ScanTable(target, {}, {}));
        BAUPLAN_ASSIGN_OR_RETURN(auto outcome,
                                 expectation.Check(table));
        node_report.expectation_passed = outcome.passed;
        node_report.details = outcome.details;
        node_report.output_rows = table.num_rows();
        if (!outcome.passed) report.all_expectations_passed = false;
      }
      report.nodes.push_back(std::move(node_report));
    }
    return Status::OK();
  };

  BAUPLAN_ASSIGN_OR_RETURN(runtime::InvocationReport invocation,
                           executor_->Invoke(request));
  report.fused_invocation = std::move(invocation);
  report.total_micros = clock_->NowMicros() - start;
  report.spill_metrics = spill_store_->metrics();
  return report;
}

// --------------------------------------------------------------- naive

runtime::FunctionRequest PipelineRunner::BuildNaiveRequest(
    internal::NaiveRunContext& ctx, const std::string& name,
    NodeReport* node_report) {
  const pipeline::DagNode& dag_node = ctx.dag->GetNode(name);
  const PipelineNode& node = *dag_node.node;
  node_report->name = name;
  node_report->kind = node.kind;

  // Each node is its own serverless function reading inputs through
  // the object store — the isomorphic mapping of plan to execution.
  // Every upstream artifact is listed (placement and transfer see the
  // full input set, not just the last upstream).
  runtime::FunctionRequest request;
  request.name = name;
  request.spec = SpecForNode(node);
  request.output_artifact = SpillKey(name);

  int64_t input_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(ctx.mu);
    for (const auto& up : dag_node.upstream_nodes) {
      bool up_selected = ctx.selected_set.count(up) > 0;
      auto it = ctx.artifact_bytes.find(up);
      int64_t bytes = it != ctx.artifact_bytes.end() ? it->second : 0;
      if (it == ctx.artifact_bytes.end() && !up_selected) {
        bytes = EstimateCatalogArtifactBytes(catalog_, ops_, ctx.ref, up);
        ctx.artifact_bytes[up] = bytes;
      }
      input_bytes += bytes;
      // A replayed upstream lives in the catalog, not at any worker, so
      // its key never matches a recorded artifact — reading it always
      // pays the object-storage transfer.
      request.inputs.push_back(runtime::ArtifactRef{
          up_selected ? SpillKey(up) : StrCat("catalog/", up),
          static_cast<uint64_t>(bytes)});
    }
  }
  request.memory_bytes = MemoryForBytes(input_bytes);

  request.body = [this, &ctx, &dag_node, &node, name,
                  node_report]() -> Status {
    // Assemble inputs: source tables scanned in full (no pushdown —
    // the naive plan maps each logical op to one function), upstream
    // artifacts fetched from the spill store.
    sql::MemoryTableProvider inputs;
    for (const auto& table_name : dag_node.source_tables) {
      BAUPLAN_ASSIGN_OR_RETURN(std::string metadata_key,
                               catalog_->GetTable(ctx.ref, table_name));
      BAUPLAN_ASSIGN_OR_RETURN(Table table,
                               ops_->ScanTable(metadata_key));
      inputs.AddTable(table_name, std::move(table));
    }
    for (const auto& up : dag_node.upstream_nodes) {
      if (ctx.selected_set.count(up) > 0) {
        BAUPLAN_ASSIGN_OR_RETURN(Bytes bytes,
                                 spill_store_->Get(SpillKey(up)));
        BAUPLAN_ASSIGN_OR_RETURN(Table table,
                                 columnar::DeserializeTable(bytes));
        inputs.AddTable(up, std::move(table));
      } else {
        // Replay subset: the upstream artifact was materialized by the
        // original run; read it from the catalog.
        BAUPLAN_ASSIGN_OR_RETURN(std::string metadata_key,
                                 catalog_->GetTable(ctx.ref, up));
        BAUPLAN_ASSIGN_OR_RETURN(Table table,
                                 ops_->ScanTable(metadata_key));
        inputs.AddTable(up, std::move(table));
      }
    }

    if (node.kind == NodeKind::kSqlModel) {
      sql::QueryOptions qopts;
      // No scan pushdown in the naive mapping.
      qopts.optimizer.pushdown_predicates = false;
      qopts.optimizer.pushdown_projections = false;
      BAUPLAN_ASSIGN_OR_RETURN(
          sql::QueryResult result,
          sql::RunQuery(node.code, inputs, &inputs, qopts));
      node_report->output_rows = result.table.num_rows();
      // Spill the artifact for downstream functions.
      Bytes payload = columnar::SerializeTable(result.table);
      int64_t payload_bytes = static_cast<int64_t>(payload.size());
      BAUPLAN_RETURN_NOT_OK(
          spill_store_->Put(SpillKey(name), std::move(payload)));
      std::lock_guard<std::mutex> lock(ctx.mu);
      ctx.artifact_bytes[name] = payload_bytes;
      ctx.report->artifacts[name] = std::move(result.table);
    } else {
      BAUPLAN_ASSIGN_OR_RETURN(std::string target,
                               node.ExpectationTarget());
      BAUPLAN_ASSIGN_OR_RETURN(
          expectations::Expectation expectation,
          expectations::ParseExpectation(node.code));
      BAUPLAN_ASSIGN_OR_RETURN(Table table,
                               inputs.ScanTable(target, {}, {}));
      BAUPLAN_ASSIGN_OR_RETURN(auto outcome, expectation.Check(table));
      node_report->expectation_passed = outcome.passed;
      node_report->details = outcome.details;
      node_report->output_rows = table.num_rows();
      if (!outcome.passed) {
        std::lock_guard<std::mutex> lock(ctx.mu);
        ctx.report->all_expectations_passed = false;
      }
    }
    return Status::OK();
  };
  return request;
}

Result<PipelineRunReport> PipelineRunner::ExecuteNaive(
    const Dag& dag, const std::string& ref,
    const std::vector<std::string>& selected) {
  PipelineRunReport report;
  uint64_t start = clock_->NowMicros();

  internal::NaiveRunContext ctx;
  ctx.dag = &dag;
  ctx.ref = ref;
  ctx.selected_set = std::set<std::string>(selected.begin(),
                                           selected.end());
  ctx.report = &report;

  for (const auto& name : dag.execution_order()) {
    if (ctx.selected_set.count(name) == 0) continue;
    NodeReport node_report;
    runtime::FunctionRequest request =
        BuildNaiveRequest(ctx, name, &node_report);
    BAUPLAN_ASSIGN_OR_RETURN(node_report.invocation,
                             executor_->Invoke(request));
    report.nodes.push_back(std::move(node_report));
  }

  report.total_micros = clock_->NowMicros() - start;
  report.spill_metrics = spill_store_->metrics();
  return report;
}

Result<PipelineRunReport> PipelineRunner::ExecuteParallelNaive(
    const Dag& dag, const std::string& ref,
    const std::vector<std::string>& selected, int parallelism) {
  PipelineRunReport report;
  uint64_t start = clock_->NowMicros();

  internal::NaiveRunContext ctx;
  ctx.dag = &dag;
  ctx.ref = ref;
  ctx.selected_set = std::set<std::string>(selected.begin(),
                                           selected.end());
  ctx.report = &report;

  // Ready-set bookkeeping: indegree among selected nodes only (replayed
  // upstreams are already materialized, hence never block).
  std::map<std::string, int> indegree;
  std::map<std::string, std::vector<std::string>> downstream;
  for (const auto& name : dag.execution_order()) {
    if (ctx.selected_set.count(name) == 0) continue;
    int degree = 0;
    for (const auto& up : dag.GetNode(name).upstream_nodes) {
      if (ctx.selected_set.count(up) == 0) continue;
      ++degree;
      downstream[up].push_back(name);
    }
    indegree[name] = degree;
  }

  // NodeReports live in a deque so function bodies hold stable pointers
  // across waves.
  std::deque<NodeReport> slots;
  std::map<std::string, NodeReport*> slot_of;
  std::set<std::string> dispatched;
  size_t completed = 0;

  while (completed < indegree.size()) {
    // The next wave: every undispatched node whose selected upstreams
    // all finished, in execution order (deterministic).
    std::vector<runtime::FunctionRequest> ready;
    for (const auto& name : dag.execution_order()) {
      auto it = indegree.find(name);
      if (it == indegree.end() || it->second > 0) continue;
      if (dispatched.count(name) > 0) continue;
      NodeReport*& slot = slot_of[name];
      if (slot == nullptr) {
        slots.emplace_back();
        slot = &slots.back();
      }
      ready.push_back(BuildNaiveRequest(ctx, name, slot));
      dispatched.insert(name);
    }
    if (ready.empty()) {
      return Status::Internal(
          "pipeline wavefront stalled with nodes unfinished");
    }

    BAUPLAN_ASSIGN_OR_RETURN(
        runtime::WaveReport wave,
        executor_->InvokeWave(std::move(ready), parallelism));
    for (runtime::InvocationReport& invocation : wave.reports) {
      const std::string node_name = invocation.name;
      slot_of.at(node_name)->invocation = std::move(invocation);
      ++completed;
      for (const auto& down : downstream[node_name]) --indegree[down];
    }
    // Members bounced on resources stay ready; rebuild them next wave.
    for (const runtime::FunctionRequest& bounced : wave.deferred) {
      dispatched.erase(bounced.name);
    }
  }

  // Merge per-node reports deterministically, in execution order — the
  // same order the sequential walk emits.
  for (const auto& name : dag.execution_order()) {
    auto it = slot_of.find(name);
    if (it == slot_of.end()) continue;
    report.nodes.push_back(std::move(*it->second));
  }

  report.total_micros = clock_->NowMicros() - start;
  report.spill_metrics = spill_store_->metrics();
  return report;
}

}  // namespace bauplan::core
