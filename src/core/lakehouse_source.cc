#include "core/lakehouse_source.h"

namespace bauplan::core {

Result<columnar::Schema> LakehouseSource::GetTableSchema(
    const std::string& table_name) const {
  auto overlay_it = overlay_.find(table_name);
  if (overlay_it != overlay_.end()) return overlay_it->second.schema();
  BAUPLAN_ASSIGN_OR_RETURN(std::string metadata_key,
                           catalog_->GetTable(ref_, table_name));
  BAUPLAN_ASSIGN_OR_RETURN(table::TableMetadata metadata,
                           ops_->LoadMetadata(metadata_key));
  return metadata.schema;
}

Result<columnar::Table> LakehouseSource::ScanTable(
    const std::string& name, const std::vector<std::string>& columns,
    const std::vector<format::ColumnPredicate>& predicates) {
  auto overlay_it = overlay_.find(name);
  if (overlay_it != overlay_.end()) {
    // In-memory artifact: projection only; exact filters re-apply above.
    if (columns.empty()) return overlay_it->second;
    return overlay_it->second.SelectColumns(columns);
  }
  BAUPLAN_ASSIGN_OR_RETURN(std::string metadata_key,
                           catalog_->GetTable(ref_, name));
  table::ScanOptions options;
  options.columns = columns;
  options.predicates = predicates;
  table::ScanPlan plan;
  BAUPLAN_ASSIGN_OR_RETURN(columnar::Table result,
                           ops_->ScanTable(metadata_key, options, &plan));
  last_plan_ = plan;
  total_files_pruned_ +=
      plan.files_pruned_by_partition + plan.files_pruned_by_stats;
  total_files_read_ += static_cast<int64_t>(plan.files.size());
  return result;
}

}  // namespace bauplan::core
