#include "core/audit_log.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"

namespace bauplan::core {

Bytes AuditEntry::Serialize() const {
  BinaryWriter w;
  w.PutI64(sequence);
  w.PutU64(timestamp_micros);
  w.PutString(actor);
  w.PutString(operation);
  w.PutString(ref);
  w.PutString(detail);
  w.PutString(outcome);
  return w.TakeBuffer();
}

Result<AuditEntry> AuditEntry::Deserialize(const Bytes& bytes) {
  BinaryReader r(bytes);
  AuditEntry entry;
  BAUPLAN_ASSIGN_OR_RETURN(entry.sequence, r.GetI64());
  BAUPLAN_ASSIGN_OR_RETURN(entry.timestamp_micros, r.GetU64());
  BAUPLAN_ASSIGN_OR_RETURN(entry.actor, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(entry.operation, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(entry.ref, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(entry.detail, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(entry.outcome, r.GetString());
  return entry;
}

AuditLog::AuditLog(storage::ObjectStore* store, Clock* clock,
                   std::string prefix)
    : store_(store), clock_(clock), prefix_(std::move(prefix)) {}

std::string AuditLog::EntryKey(int64_t sequence) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012lld",
                static_cast<long long>(sequence));
  return StrCat(prefix_, "/entry-", buf);
}

Status AuditLog::Record(const std::string& actor,
                        const std::string& operation,
                        const std::string& ref, const std::string& detail,
                        const std::string& outcome) {
  if (!loaded_) {
    // Resume the sequence from durable state (the lake may be reopened).
    BAUPLAN_ASSIGN_OR_RETURN(auto existing,
                             store_->List(StrCat(prefix_, "/entry-")));
    if (!existing.empty()) {
      const std::string& last = existing.back().key;
      size_t dash = last.rfind('-');
      next_sequence_ = std::atoll(last.c_str() + dash + 1) + 1;
    }
    loaded_ = true;
  }
  AuditEntry entry;
  entry.sequence = next_sequence_;
  entry.timestamp_micros = clock_->NowMicros();
  entry.actor = actor;
  entry.operation = operation;
  entry.ref = ref;
  entry.detail = detail;
  entry.outcome = outcome;
  BAUPLAN_RETURN_NOT_OK(
      store_->Put(EntryKey(entry.sequence), entry.Serialize()));
  ++next_sequence_;
  return Status::OK();
}

Result<std::vector<AuditEntry>> AuditLog::Tail(size_t limit) const {
  BAUPLAN_ASSIGN_OR_RETURN(auto objects,
                           store_->List(StrCat(prefix_, "/entry-")));
  std::vector<AuditEntry> out;
  size_t start =
      limit == 0 || objects.size() <= limit ? 0 : objects.size() - limit;
  for (size_t i = objects.size(); i > start; --i) {
    BAUPLAN_ASSIGN_OR_RETURN(Bytes bytes,
                             store_->Get(objects[i - 1].key));
    BAUPLAN_ASSIGN_OR_RETURN(AuditEntry entry,
                             AuditEntry::Deserialize(bytes));
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace bauplan::core
