#ifndef BAUPLAN_CORE_RUN_REPORT_H_
#define BAUPLAN_CORE_RUN_REPORT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "pipeline/project.h"
#include "runtime/executor.h"
#include "storage/metered_store.h"

namespace bauplan::core {

/// One executed node: pipeline outcome plus the executor's timing
/// breakdown, flattened (the previous API nested a whole
/// InvocationReport here; the executor still uses that struct
/// internally, but reports fold it into these fields).
struct NodeExecution {
  std::string name;
  pipeline::NodeKind kind = pipeline::NodeKind::kSqlModel;
  int64_t output_rows = 0;
  /// Expectation nodes only.
  bool expectation_passed = true;
  std::string details;
  /// Served from the differential artifact cache: the node never
  /// executed (no container, no scheduling) — its output was memoized by
  /// an earlier run with the same fingerprint. All timing fields below
  /// stay zero except any cache-materialize transfer.
  bool cache_hit = false;

  // -- timing on the simulated clock -----------------------------------
  runtime::StartKind start_kind = runtime::StartKind::kCold;
  int worker = -1;
  bool locality_hit = false;
  /// Time spent waiting for the assigned worker (wavefront mode).
  uint64_t queue_micros = 0;
  /// Container cold start / resume / warm dispatch.
  uint64_t startup_micros = 0;
  /// Input movement to the worker.
  uint64_t transfer_micros = 0;
  uint64_t body_micros = 0;
  /// Queue + startup + transfer + body.
  uint64_t total_micros = 0;

  /// Copies the timing fields out of an executor-level report.
  void ApplyInvocation(const runtime::InvocationReport& invocation);
};

/// The one report every run-shaped verb returns (`Run`, `ReplayRun`, and
/// PipelineRunner::Execute, which leaves the merge fields defaulted).
/// Version 2 of the report schema: the previous API split this across
/// RunReport / PipelineRunReport / NodeReport / InvocationReport.
struct RunReport {
  static constexpr int kSchemaVersion = 2;

  // -- identity / merge outcome (filled by the Bauplan facade) ---------
  int64_t run_id = 0;
  std::string status;
  /// Commit the target branch ended at ("" when not merged).
  std::string merged_commit_id;
  bool merged = false;

  // -- execution -------------------------------------------------------
  /// Simulated end-to-end latency of the DAG execution (the run
  /// makespan; excludes materialize/merge bookkeeping).
  uint64_t total_micros = 0;
  bool all_expectations_passed = true;
  std::vector<NodeExecution> nodes;
  /// Fused mode only: the single invocation the whole DAG ran as (naive
  /// mode reports per node instead).
  std::optional<NodeExecution> fused;
  /// Object-store traffic caused by intermediate spill (naive mode).
  storage::StoreMetrics spill_metrics;
  /// Artifact name -> produced table (SQL nodes only).
  std::map<std::string, columnar::Table> artifacts;

  // -- observability ---------------------------------------------------
  /// Hierarchical span tree of the execution: run -> wave -> node ->
  /// {scan, sql, expectation, spill}. Empty when no tracer was wired in.
  observability::Trace trace;
  /// Flat dump of the platform's metric instruments at run end.
  observability::MetricsSnapshot metrics;

  const NodeExecution* FindNode(const std::string& name) const;

  /// Renders the whole report (minus artifact data) as JSON: identity,
  /// per-node timing, spill metrics, the trace and the metrics dump.
  std::string ToJson() const;
};

}  // namespace bauplan::core

#endif  // BAUPLAN_CORE_RUN_REPORT_H_
