#ifndef BAUPLAN_CORE_QUERY_CACHE_H_
#define BAUPLAN_CORE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "columnar/table.h"
#include "observability/metrics.h"

namespace bauplan::core {

/// LRU cache of query results keyed by (SQL text, catalog commit id).
/// The paper's section 5 lists "using logs ... to further optimize the
/// experience behind the scenes" as future work; result caching is the
/// lowest-hanging instance, and the versioned catalog makes it sound for
/// free: a table can only change by producing a new commit id, so a
/// (sql, commit) pair is immutable and needs no invalidation protocol.
class QueryResultCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  /// `capacity_bytes` bounds the total EstimatedBytes of cached tables;
  /// 0 disables caching entirely. Does not own `registry`; counters
  /// register as "query_cache.*" instruments, with a private fallback
  /// registry when null.
  explicit QueryResultCache(
      uint64_t capacity_bytes = 256ull << 20,
      observability::MetricsRegistry* registry = nullptr);

  /// Looks up a result; copies it into `out` on a hit.
  bool Lookup(const std::string& sql, const std::string& commit_id,
              columnar::Table* out);

  /// Stores a result (no-op when disabled or the table alone exceeds
  /// capacity).
  void Insert(const std::string& sql, const std::string& commit_id,
              const columnar::Table& table);

  /// Snapshot by value; call again for fresh numbers.
  Stats stats() const;
  uint64_t used_bytes() const { return used_bytes_; }
  size_t entry_count() const { return entries_.size(); }

  void Clear();

 private:
  struct Entry {
    std::string key;
    columnar::Table table;
    uint64_t bytes = 0;
  };

  static std::string MakeKey(const std::string& sql,
                             const std::string& commit_id);
  void EvictUntilFits(uint64_t incoming);

  uint64_t capacity_bytes_;
  uint64_t used_bytes_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  std::unique_ptr<observability::MetricsRegistry> owned_registry_;
  observability::Counter* hits_;
  observability::Counter* misses_;
  observability::Counter* evictions_;
};

}  // namespace bauplan::core

#endif  // BAUPLAN_CORE_QUERY_CACHE_H_
