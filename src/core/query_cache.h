#ifndef BAUPLAN_CORE_QUERY_CACHE_H_
#define BAUPLAN_CORE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "columnar/table.h"
#include "observability/metrics.h"
#include "sql/engine.h"

namespace bauplan::core {

/// LRU cache of query results keyed by (SQL text, catalog commit id).
/// The paper's section 5 lists "using logs ... to further optimize the
/// experience behind the scenes" as future work; result caching is the
/// lowest-hanging instance, and the versioned catalog makes it sound for
/// free: a table can only change by producing a new commit id, so a
/// (sql, commit) pair is immutable and needs no invalidation protocol.
///
/// Entries carry the whole result payload — table, execution stats,
/// plans and lint findings — so a hit is indistinguishable from a fresh
/// execution (minus the from_cache flag). Plans are only present when
/// the original execution captured them; a caller that needs plans
/// misses on a plan-less entry (and the re-execution upgrades it).
class QueryResultCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  /// `capacity_bytes` bounds the total EstimatedBytes of cached tables;
  /// 0 disables caching entirely. Does not own `registry`; counters
  /// register as "query_cache.*" instruments, with a private fallback
  /// registry when null.
  explicit QueryResultCache(
      uint64_t capacity_bytes = 256ull << 20,
      observability::MetricsRegistry* registry = nullptr);

  /// Looks up a result; copies the payload (table, stats, and — when
  /// `need_plans` — plans and lints) into `out` on a hit. An entry
  /// without captured plans cannot serve `need_plans` and misses.
  /// `out->from_cache` / `out->trace` are left untouched.
  bool Lookup(const std::string& sql, const std::string& commit_id,
              bool need_plans, sql::QueryResult* out);

  /// Compat shim (table-only): hit copies just the table.
  bool Lookup(const std::string& sql, const std::string& commit_id,
              columnar::Table* out);

  /// Stores a result payload; `has_plans` marks whether `result` carries
  /// captured plans/lints. Re-inserting under an existing key is a no-op
  /// unless the newcomer has plans and the incumbent does not (upgrade).
  /// No-op when disabled or the table alone exceeds capacity.
  void Insert(const std::string& sql, const std::string& commit_id,
              const sql::QueryResult& result, bool has_plans);

  /// Compat shim (table-only, no plans).
  void Insert(const std::string& sql, const std::string& commit_id,
              const columnar::Table& table);

  /// Snapshot by value; call again for fresh numbers.
  Stats stats() const;
  uint64_t used_bytes() const { return used_bytes_; }
  size_t entry_count() const { return entries_.size(); }

  void Clear();

 private:
  struct Entry {
    std::string key;
    columnar::Table table;
    sql::ExecStats exec_stats;
    std::string logical_plan;
    std::string physical_plan;
    std::vector<Diagnostic> lints;
    bool has_plans = false;
    uint64_t bytes = 0;
  };

  static std::string MakeKey(const std::string& sql,
                             const std::string& commit_id);
  static uint64_t EntryBytes(const Entry& entry);
  void EvictUntilFits(uint64_t incoming);

  uint64_t capacity_bytes_;
  uint64_t used_bytes_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  std::unique_ptr<observability::MetricsRegistry> owned_registry_;
  observability::Counter* hits_;
  observability::Counter* misses_;
  observability::Counter* evictions_;
};

}  // namespace bauplan::core

#endif  // BAUPLAN_CORE_QUERY_CACHE_H_
