#ifndef BAUPLAN_SQL_LEXER_H_
#define BAUPLAN_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace bauplan::sql {

/// Kinds of lexical tokens. Keywords are recognized case-insensitively and
/// carry their canonical uppercase text.
enum class TokenType {
  kKeyword,
  kIdentifier,
  kStringLiteral,
  kIntegerLiteral,
  kFloatLiteral,
  // Punctuation / operators.
  kComma,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kDot,
  kSemicolon,
  kEnd,
};

/// One token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  /// Keyword (uppercased), identifier (as written), literal text.
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
};

/// Tokenizes `sql`; InvalidArgument on malformed input (unterminated
/// string, stray characters). The trailing token is always kEnd.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_LEXER_H_
