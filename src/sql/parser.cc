#include "sql/parser.h"

#include "columnar/datetime.h"
#include "common/strings.h"
#include "sql/lexer.h"

namespace bauplan::sql {

using columnar::Value;

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseStatement() {
    BAUPLAN_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelectBody());
    Accept(TokenType::kSemicolon);
    if (Peek().type != TokenType::kEnd) {
      return SyntaxError(StrCat("unexpected trailing input '",
                                Peek().text, "'"));
    }
    return stmt;
  }

 private:
  /// Parses SELECT ... [LIMIT n] without consuming statement terminators
  /// (also used for derived tables, which stop at the closing paren).
  Result<SelectStatement> ParseSelectBody() {
    BAUPLAN_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    SelectStatement stmt;
    stmt.distinct = AcceptKeyword("DISTINCT");
    BAUPLAN_ASSIGN_OR_RETURN(stmt.items, ParseSelectList());
    BAUPLAN_RETURN_NOT_OK(ExpectKeyword("FROM"));
    BAUPLAN_ASSIGN_OR_RETURN(stmt.from, ParseTableRef());
    while (PeekJoin()) {
      BAUPLAN_ASSIGN_OR_RETURN(JoinClause join, ParseJoin());
      stmt.joins.push_back(std::move(join));
    }
    if (AcceptKeyword("WHERE")) {
      BAUPLAN_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      BAUPLAN_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        BAUPLAN_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
      } while (Accept(TokenType::kComma));
    }
    if (AcceptKeyword("HAVING")) {
      BAUPLAN_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (AcceptKeyword("ORDER")) {
      BAUPLAN_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        OrderKey key;
        BAUPLAN_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          key.ascending = false;
        } else {
          AcceptKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(key));
      } while (Accept(TokenType::kComma));
    }
    if (AcceptKeyword("LIMIT")) {
      const Token& tok = Peek();
      if (tok.type != TokenType::kIntegerLiteral || tok.int_value < 0) {
        return SyntaxError("LIMIT expects a non-negative integer");
      }
      stmt.limit = tok.int_value;
      Advance();
    }
    if (AcceptKeyword("UNION")) {
      BAUPLAN_RETURN_NOT_OK(ExpectKeyword("ALL"));
      if (!stmt.order_by.empty() || stmt.limit >= 0) {
        return SyntaxError(
            "ORDER BY/LIMIT are not allowed on a unioned SELECT; wrap "
            "the union in a derived table");
      }
      BAUPLAN_ASSIGN_OR_RETURN(SelectStatement next, ParseSelectBody());
      if (!next.order_by.empty() || next.limit >= 0) {
        return SyntaxError(
            "ORDER BY/LIMIT are not allowed on a unioned SELECT; wrap "
            "the union in a derived table");
      }
      stmt.union_next =
          std::make_shared<SelectStatement>(std::move(next));
    }
    return stmt;
  }

  Result<SelectStatement> ParseSubSelect() { return ParseSelectBody(); }

  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  void Advance() { ++pos_; }

  bool Accept(TokenType type) {
    if (Peek().type == type) {
      Advance();
      return true;
    }
    return false;
  }

  bool AcceptKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return SyntaxError(StrCat("expected ", kw));
    }
    return Status::OK();
  }

  Status Expect(TokenType type, std::string_view what) {
    if (!Accept(type)) {
      return SyntaxError(StrCat("expected ", what));
    }
    return Status::OK();
  }

  static bool IsFunctionKeyword(const Token& tok) {
    return tok.type == TokenType::kKeyword &&
           (tok.text == "COUNT" || tok.text == "SUM" || tok.text == "AVG" ||
            tok.text == "MIN" || tok.text == "MAX");
  }

  Status SyntaxError(std::string message) const {
    return Status::InvalidArgument(StrCat("syntax error at position ",
                                          Peek().position, ": ", message));
  }

  Result<std::vector<SelectItem>> ParseSelectList() {
    std::vector<SelectItem> items;
    do {
      SelectItem item;
      if (Peek().type == TokenType::kStar) {
        Advance();
        item.expr = MakeStar();
      } else {
        BAUPLAN_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          // Function-name keywords are fine as aliases: the paper's own
          // Step 1 writes `passenger_count as count`.
          if (Peek().type != TokenType::kIdentifier &&
              !IsFunctionKeyword(Peek())) {
            return SyntaxError("expected alias after AS");
          }
          item.alias = Peek().type == TokenType::kIdentifier
                           ? Peek().text
                           : ToLower(Peek().text);
          Advance();
        } else if (Peek().type == TokenType::kIdentifier) {
          // Bare alias (SELECT a b).
          item.alias = Peek().text;
          Advance();
        }
      }
      items.push_back(std::move(item));
    } while (Accept(TokenType::kComma));
    return items;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (Peek().type == TokenType::kLParen) {
      // Derived table: FROM (SELECT ...) alias.
      Advance();
      BAUPLAN_ASSIGN_OR_RETURN(SelectStatement inner, ParseSubSelect());
      BAUPLAN_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      ref.subquery = std::make_shared<SelectStatement>(std::move(inner));
      AcceptKeyword("AS");
      if (Peek().type != TokenType::kIdentifier) {
        return SyntaxError("derived table needs an alias");
      }
      ref.alias = Peek().text;
      ref.table_name = ref.alias;
      Advance();
      return ref;
    }
    if (Peek().type != TokenType::kIdentifier) {
      return SyntaxError("expected table name");
    }
    ref.table_name = Peek().text;
    Advance();
    if (AcceptKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return SyntaxError("expected table alias after AS");
      }
      ref.alias = Peek().text;
      Advance();
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Peek().text;
      Advance();
    }
    if (ref.alias.empty()) ref.alias = ref.table_name;
    return ref;
  }

  bool PeekJoin() const {
    return Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER") ||
           Peek().IsKeyword("LEFT");
  }

  Result<JoinClause> ParseJoin() {
    JoinClause join;
    if (AcceptKeyword("LEFT")) {
      AcceptKeyword("OUTER");
      join.type = JoinType::kLeft;
    } else {
      AcceptKeyword("INNER");
      join.type = JoinType::kInner;
    }
    BAUPLAN_RETURN_NOT_OK(ExpectKeyword("JOIN"));
    BAUPLAN_ASSIGN_OR_RETURN(join.table, ParseTableRef());
    BAUPLAN_RETURN_NOT_OK(ExpectKeyword("ON"));
    BAUPLAN_ASSIGN_OR_RETURN(join.on, ParseExpr());
    return join;
  }

  // Expression grammar, lowest precedence first.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    BAUPLAN_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AcceptKeyword("OR")) {
      BAUPLAN_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    BAUPLAN_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Peek().IsKeyword("AND")) {
      Advance();
      BAUPLAN_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      BAUPLAN_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    BAUPLAN_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      BAUPLAN_RETURN_NOT_OK(ExpectKeyword("NULL"));
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kIsNull;
      e->left = std::move(left);
      e->negated = negated;
      return ExprPtr(e);
    }
    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN") ||
         Peek(1).IsKeyword("LIKE"))) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("BETWEEN")) {
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kBetween;
      e->left = std::move(left);
      e->negated = negated;
      BAUPLAN_ASSIGN_OR_RETURN(e->between_low, ParseAdditive());
      BAUPLAN_RETURN_NOT_OK(ExpectKeyword("AND"));
      BAUPLAN_ASSIGN_OR_RETURN(e->between_high, ParseAdditive());
      return ExprPtr(e);
    }
    if (AcceptKeyword("IN")) {
      BAUPLAN_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after IN"));
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kInList;
      e->left = std::move(left);
      e->negated = negated;
      do {
        BAUPLAN_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->list.push_back(std::move(item));
      } while (Accept(TokenType::kComma));
      BAUPLAN_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return ExprPtr(e);
    }
    if (AcceptKeyword("LIKE")) {
      if (Peek().type != TokenType::kStringLiteral) {
        return SyntaxError("LIKE expects a string pattern literal");
      }
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kLike;
      e->left = std::move(left);
      e->negated = negated;
      e->pattern = Peek().text;
      Advance();
      return ExprPtr(e);
    }
    BinaryOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenType::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenType::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenType::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenType::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenType::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return left;
    }
    Advance();
    BAUPLAN_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return MakeBinary(op, std::move(left), std::move(right));
  }

  Result<ExprPtr> ParseAdditive() {
    BAUPLAN_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Peek().type == TokenType::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().type == TokenType::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      Advance();
      BAUPLAN_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    BAUPLAN_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Peek().type == TokenType::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().type == TokenType::kSlash) {
        op = BinaryOp::kDiv;
      } else if (Peek().type == TokenType::kPercent) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      Advance();
      BAUPLAN_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept(TokenType::kMinus)) {
      BAUPLAN_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      // Fold negation of numeric literals.
      if (operand->kind == ExprKind::kLiteral && !operand->literal.is_null()) {
        if (operand->literal.type() == columnar::TypeId::kInt64) {
          return MakeLiteral(Value::Int64(-operand->literal.int64_value()));
        }
        if (operand->literal.type() == columnar::TypeId::kDouble) {
          return MakeLiteral(Value::Double(-operand->literal.double_value()));
        }
      }
      return MakeUnary(UnaryOp::kNegate, std::move(operand));
    }
    Accept(TokenType::kPlus);
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kIntegerLiteral: {
        int64_t v = tok.int_value;
        Advance();
        return MakeLiteral(Value::Int64(v));
      }
      case TokenType::kFloatLiteral: {
        double v = tok.float_value;
        Advance();
        return MakeLiteral(Value::Double(v));
      }
      case TokenType::kStringLiteral: {
        std::string v = tok.text;
        Advance();
        return MakeLiteral(Value::String(std::move(v)));
      }
      case TokenType::kLParen: {
        Advance();
        BAUPLAN_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        BAUPLAN_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return inner;
      }
      case TokenType::kKeyword: {
        if (tok.text == "NULL") {
          Advance();
          return MakeLiteral(Value::Null());
        }
        if (tok.text == "TRUE") {
          Advance();
          return MakeLiteral(Value::Bool(true));
        }
        if (tok.text == "FALSE") {
          Advance();
          return MakeLiteral(Value::Bool(false));
        }
        if (tok.text == "CAST") {
          Advance();
          BAUPLAN_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
          auto e = std::make_shared<Expr>();
          e->kind = ExprKind::kCast;
          BAUPLAN_ASSIGN_OR_RETURN(e->left, ParseExpr());
          BAUPLAN_RETURN_NOT_OK(ExpectKeyword("AS"));
          if (Peek().type != TokenType::kIdentifier) {
            return SyntaxError("expected type name in CAST");
          }
          BAUPLAN_ASSIGN_OR_RETURN(
              e->cast_type, columnar::TypeIdFromString(ToLower(Peek().text)));
          Advance();
          BAUPLAN_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
          return ExprPtr(e);
        }
        if (tok.text == "CASE") {
          Advance();
          auto e = std::make_shared<Expr>();
          e->kind = ExprKind::kCase;
          while (AcceptKeyword("WHEN")) {
            BAUPLAN_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
            BAUPLAN_RETURN_NOT_OK(ExpectKeyword("THEN"));
            BAUPLAN_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
            e->list.push_back(std::move(cond));
            e->list.push_back(std::move(value));
          }
          if (e->list.empty()) {
            return SyntaxError("CASE needs at least one WHEN");
          }
          if (AcceptKeyword("ELSE")) {
            BAUPLAN_ASSIGN_OR_RETURN(e->right, ParseExpr());
          }
          BAUPLAN_RETURN_NOT_OK(ExpectKeyword("END"));
          return ExprPtr(e);
        }
        // Aggregates spelled as keywords. Without a following '(', these
        // are plain column references (a column named "count" is legal —
        // the paper's Step 1 creates one).
        if (IsFunctionKeyword(tok) &&
            Peek(1).type != TokenType::kLParen) {
          std::string name = ToLower(tok.text);
          Advance();
          return MakeColumnRef("", std::move(name));
        }
        if (IsFunctionKeyword(tok)) {
          std::string name = tok.text;
          Advance();
          BAUPLAN_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
          bool distinct = AcceptKeyword("DISTINCT");
          if (name == "COUNT" && Accept(TokenType::kStar)) {
            BAUPLAN_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
            return MakeFunction("COUNT", {}, false, /*star_arg=*/true);
          }
          BAUPLAN_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          BAUPLAN_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
          return MakeFunction(std::move(name), {std::move(arg)}, distinct);
        }
        return SyntaxError(StrCat("unexpected keyword ", tok.text));
      }
      case TokenType::kIdentifier: {
        std::string first = tok.text;
        Advance();
        if (Accept(TokenType::kLParen)) {
          // Scalar function call.
          std::string name = ToUpper(first);
          std::vector<ExprPtr> args;
          if (!Accept(TokenType::kRParen)) {
            do {
              BAUPLAN_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
            } while (Accept(TokenType::kComma));
            BAUPLAN_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
          }
          return MakeFunction(std::move(name), std::move(args));
        }
        if (Accept(TokenType::kDot)) {
          if (Peek().type != TokenType::kIdentifier) {
            return SyntaxError("expected column name after '.'");
          }
          std::string column = Peek().text;
          Advance();
          return MakeColumnRef(std::move(first), std::move(column));
        }
        return MakeColumnRef("", std::move(first));
      }
      default:
        return SyntaxError(StrCat("unexpected token '", tok.text, "'"));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(std::string_view sql) {
  BAUPLAN_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::vector<std::string>> ExtractTableReferences(
    std::string_view sql) {
  BAUPLAN_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  return stmt.ReferencedTables();
}

}  // namespace bauplan::sql
