#ifndef BAUPLAN_SQL_EXPR_EVAL_H_
#define BAUPLAN_SQL_EXPR_EVAL_H_

#include "columnar/array.h"
#include "columnar/table.h"
#include "common/result.h"
#include "sql/ast.h"

namespace bauplan::sql {

/// Evaluates a bound expression column-at-a-time against `input`,
/// producing an array of input.num_rows() values. Null semantics follow
/// SQL three-valued logic: comparisons and arithmetic over null are null;
/// AND/OR propagate unknowns; WHERE later treats null as false.
Result<columnar::ArrayPtr> EvaluateExpr(const Expr& expr,
                                        const columnar::Table& input);

/// Evaluates an expression with no column references to a single Value
/// (used by the optimizer's constant folding). InvalidArgument when the
/// expression references columns.
Result<columnar::Value> EvaluateConstant(const Expr& expr);

/// SQL LIKE with % (any run) and _ (any char); case-sensitive.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_EXPR_EVAL_H_
