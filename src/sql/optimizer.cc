#include "sql/optimizer.h"

#include <functional>
#include <set>

#include "analysis/range_analysis.h"
#include "columnar/datetime.h"
#include "common/strings.h"
#include "sql/expr_eval.h"

namespace bauplan::sql {

using columnar::Field;
using columnar::Schema;
using columnar::Value;
using format::ColumnPredicate;
using format::CompareOp;

namespace {

// ------------------------------------------------------ constant folding

bool IsConstant(const Expr& expr) {
  std::vector<std::string> refs;
  CollectColumnRefs(expr, &refs);
  if (!refs.empty()) return false;
  // Aggregates are not constants even without column refs (COUNT(*)).
  return !ContainsAggregate(expr);
}

/// Folds literal-only subtrees bottom-up. Leaves anything unevaluable
/// (e.g. CAST errors) as-is; folding is best-effort.
ExprPtr FoldExpr(const ExprPtr& expr) {
  if (expr == nullptr) return nullptr;
  auto copy = std::make_shared<Expr>(*expr);
  copy->left = FoldExpr(expr->left);
  copy->right = FoldExpr(expr->right);
  copy->between_low = FoldExpr(expr->between_low);
  copy->between_high = FoldExpr(expr->between_high);
  for (auto& a : copy->args) a = FoldExpr(a);
  for (auto& e : copy->list) e = FoldExpr(e);
  if (copy->kind != ExprKind::kLiteral && IsConstant(*copy)) {
    auto value = EvaluateConstant(*copy);
    if (value.ok()) return MakeLiteral(*value);
  }
  return copy;
}

// ---------------------------------------------------- predicate pushdown

Result<CompareOp> ToCompareOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return CompareOp::kEq;
    case BinaryOp::kNe:
      return CompareOp::kNe;
    case BinaryOp::kLt:
      return CompareOp::kLt;
    case BinaryOp::kLe:
      return CompareOp::kLe;
    case BinaryOp::kGt:
      return CompareOp::kGt;
    case BinaryOp::kGe:
      return CompareOp::kGe;
    default:
      return Status::InvalidArgument("not a comparison");
  }
}

CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

/// Extracts `column <op> literal` from a conjunct (either orientation).
bool AsSimplePredicate(const Expr& expr, ColumnPredicate* out) {
  if (expr.kind != ExprKind::kBinary) return false;
  auto op = ToCompareOp(expr.binary_op);
  if (!op.ok()) return false;
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (expr.left->kind == ExprKind::kColumnRef &&
      expr.right->kind == ExprKind::kLiteral) {
    col = expr.left.get();
    lit = expr.right.get();
  } else if (expr.right->kind == ExprKind::kColumnRef &&
             expr.left->kind == ExprKind::kLiteral) {
    col = expr.right.get();
    lit = expr.left.get();
    flipped = true;
  } else {
    return false;
  }
  out->column = col->column_name;
  out->op = flipped ? FlipOp(*op) : *op;
  out->value = lit->literal;
  return true;
}

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary &&
      expr->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(expr->left, out);
    SplitConjuncts(expr->right, out);
    return;
  }
  out->push_back(expr);
}

/// Pushes one predicate hint down to every scan that can use it. Renaming
/// projections translate the column name; joins route by schema
/// membership (never into the null-producing side of a LEFT join);
/// aggregates and limits stop the descent.
void PushHintToScans(const PlanPtr& node, ColumnPredicate pred) {
  switch (node->kind) {
    case PlanKind::kScan: {
      int idx = node->schema.GetFieldIndex(pred.column);
      if (idx < 0) return;
      // Coerce string literals against timestamp columns so zone maps
      // compare like with like ('2019-04-01' in the paper's Step 1).
      if (node->schema.field(idx).type == columnar::TypeId::kTimestamp &&
          !pred.value.is_null() &&
          pred.value.type() == columnar::TypeId::kString) {
        auto parsed =
            columnar::ParseTimestampString(pred.value.string_value());
        if (!parsed.ok()) return;  // unusable hint; the filter still runs
        pred.value = Value::Timestamp(*parsed);
      }
      node->scan_predicates.push_back(std::move(pred));
      return;
    }
    case PlanKind::kProject: {
      // Translate output name -> input expression; only pure renames pass.
      for (size_t i = 0; i < node->output_names.size(); ++i) {
        if (node->output_names[i] == pred.column) {
          const ExprPtr& e = node->expressions[i];
          if (e->kind == ExprKind::kColumnRef) {
            pred.column = e->column_name;
            PushHintToScans(node->children[0], std::move(pred));
          }
          return;
        }
      }
      return;
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kDistinct:
      PushHintToScans(node->children[0], std::move(pred));
      return;
    case PlanKind::kJoin: {
      const PlanPtr& left = node->children[0];
      const PlanPtr& right = node->children[1];
      // Output column names are unique across sides (alias-qualified).
      if (left->schema.HasField(pred.column)) {
        PushHintToScans(left, std::move(pred));
      } else if (right->schema.HasField(pred.column) &&
                 node->join_type == JoinType::kInner) {
        PushHintToScans(right, std::move(pred));
      }
      return;
    }
    case PlanKind::kAggregate:
    case PlanKind::kLimit:
    case PlanKind::kUnion:
      return;  // cannot push through
  }
}

void PushdownPredicates(const PlanPtr& node) {
  if (node->kind == PlanKind::kFilter) {
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(node->predicate, &conjuncts);
    for (const auto& conjunct : conjuncts) {
      ColumnPredicate pred;
      if (AsSimplePredicate(*conjunct, &pred) && !pred.value.is_null()) {
        PushHintToScans(node->children[0], std::move(pred));
      }
    }
  }
  for (const auto& child : node->children) PushdownPredicates(child);
}

// ------------------------------------------- filter-through-join pushdown

/// True when every column `expr` references exists in `schema`.
bool RefsBoundBy(const Expr& expr, const columnar::Schema& schema) {
  std::vector<std::string> refs;
  CollectColumnRefs(expr, &refs);
  for (const auto& name : refs) {
    if (!schema.HasField(name)) return false;
  }
  return true;
}

ExprPtr AndTogether(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const auto& c : conjuncts) {
    out = out == nullptr ? c : MakeBinary(BinaryOp::kAnd, out, c);
  }
  return out;
}

/// Moves WHERE conjuncts that reference only one side of a join below the
/// join, so it builds and probes pre-filtered inputs. Unlike the advisory
/// scan hints above, this is an exact plan rewrite — the moved conjunct is
/// gone from the upper filter. For LEFT joins only probe-side (left)
/// conjuncts move: filtering the null-producing right side would change
/// which probe rows null-extend.
void PushFiltersThroughJoins(PlanPtr& node) {
  for (auto& child : node->children) PushFiltersThroughJoins(child);
  if (node->kind != PlanKind::kFilter) return;
  PlanPtr join = node->children[0];
  if (join->kind != PlanKind::kJoin) return;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(node->predicate, &conjuncts);
  std::vector<ExprPtr> left_push, right_push, keep;
  for (const auto& c : conjuncts) {
    // Name lookups below mirror execution: the joined table resolves a
    // duplicated name to the left side first, so a conjunct bound by the
    // left schema must stay with the left side.
    if (ContainsAggregate(*c)) {
      keep.push_back(c);
    } else if (RefsBoundBy(*c, join->children[0]->schema)) {
      left_push.push_back(c);
    } else if (join->join_type == JoinType::kInner &&
               RefsBoundBy(*c, join->children[1]->schema)) {
      right_push.push_back(c);
    } else {
      keep.push_back(c);
    }
  }
  if (left_push.empty() && right_push.empty()) return;
  auto wrap = [](PlanPtr input, ExprPtr pred) {
    PlanPtr filter = MakePlanNode(PlanKind::kFilter);
    filter->schema = input->schema;
    filter->predicate = std::move(pred);
    filter->children = {std::move(input)};
    return filter;
  };
  if (!left_push.empty()) {
    join->children[0] = wrap(join->children[0], AndTogether(left_push));
  }
  if (!right_push.empty()) {
    join->children[1] = wrap(join->children[1], AndTogether(right_push));
  }
  if (keep.empty()) {
    node = join;  // every conjunct moved; the filter dissolves
  } else {
    node->predicate = AndTogether(keep);
  }
}

// --------------------------------------------------- projection pushdown

void CollectExprColumns(const ExprPtr& expr, std::set<std::string>* out) {
  if (expr == nullptr) return;
  std::vector<std::string> refs;
  CollectColumnRefs(*expr, &refs);
  out->insert(refs.begin(), refs.end());
}

/// Prunes each node's output to `needed` (propagating requirements down)
/// and recomputes schemas bottom-up.
void PruneColumns(const PlanPtr& node, std::set<std::string> needed) {
  switch (node->kind) {
    case PlanKind::kScan: {
      // Also keep columns needed by pushed-down predicate hints (the
      // source prunes with them; it does not need them projected, but
      // keeping the set consistent with `needed` is what matters here).
      std::vector<std::string> columns;
      for (const auto& f : node->schema.fields()) {
        if (needed.count(f.name) > 0) columns.push_back(f.name);
      }
      // A scan must produce at least one column (COUNT(*) queries).
      if (columns.empty() && node->schema.num_fields() > 0) {
        columns.push_back(node->schema.field(0).name);
      }
      if (columns.size() ==
          static_cast<size_t>(node->schema.num_fields())) {
        return;  // nothing to trim
      }
      node->scan_columns = columns;
      node->schema = *node->schema.Select(columns);
      return;
    }
    case PlanKind::kProject: {
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      std::vector<Field> fields;
      std::set<std::string> child_needed;
      for (size_t i = 0; i < node->expressions.size(); ++i) {
        if (needed.count(node->output_names[i]) == 0) continue;
        exprs.push_back(node->expressions[i]);
        names.push_back(node->output_names[i]);
        fields.push_back(node->schema.field(static_cast<int>(i)));
        CollectExprColumns(node->expressions[i], &child_needed);
      }
      // Keep at least one column so row counts survive.
      if (exprs.empty() && !node->expressions.empty()) {
        exprs.push_back(node->expressions[0]);
        names.push_back(node->output_names[0]);
        fields.push_back(node->schema.field(0));
        CollectExprColumns(node->expressions[0], &child_needed);
      }
      node->expressions = std::move(exprs);
      node->output_names = std::move(names);
      node->schema = Schema(std::move(fields));
      PruneColumns(node->children[0], std::move(child_needed));
      return;
    }
    case PlanKind::kFilter: {
      CollectExprColumns(node->predicate, &needed);
      PruneColumns(node->children[0], needed);
      node->schema = node->children[0]->schema;
      return;
    }
    case PlanKind::kSort: {
      for (const auto& key : node->sort_keys) {
        CollectExprColumns(key.expr, &needed);
      }
      PruneColumns(node->children[0], needed);
      node->schema = node->children[0]->schema;
      return;
    }
    case PlanKind::kLimit: {
      PruneColumns(node->children[0], needed);
      node->schema = node->children[0]->schema;
      return;
    }
    case PlanKind::kDistinct: {
      // Dropping columns would change which rows are duplicates; keep
      // the child's full output.
      std::set<std::string> all;
      for (const auto& f : node->children[0]->schema.fields()) {
        all.insert(f.name);
      }
      PruneColumns(node->children[0], std::move(all));
      node->schema = node->children[0]->schema;
      return;
    }
    case PlanKind::kUnion: {
      // Branches align by position, so column sets must stay intact.
      for (const auto& child : node->children) {
        std::set<std::string> all;
        for (const auto& f : child->schema.fields()) all.insert(f.name);
        PruneColumns(child, std::move(all));
      }
      return;
    }
    case PlanKind::kAggregate: {
      std::set<std::string> child_needed;
      for (const auto& key : node->group_by) {
        CollectExprColumns(key, &child_needed);
      }
      for (const auto& agg : node->aggregates) {
        CollectExprColumns(agg.arg, &child_needed);
      }
      PruneColumns(node->children[0], std::move(child_needed));
      return;  // aggregate output schema is already minimal
    }
    case PlanKind::kJoin: {
      std::set<std::string> left_needed, right_needed;
      auto route = [&](const std::string& name) {
        if (node->children[0]->schema.HasField(name)) {
          left_needed.insert(name);
        } else if (node->children[1]->schema.HasField(name)) {
          right_needed.insert(name);
        }
      };
      for (const auto& name : needed) route(name);
      std::set<std::string> key_columns;
      for (const auto& k : node->left_keys) {
        CollectExprColumns(k, &key_columns);
      }
      for (const auto& k : node->right_keys) {
        CollectExprColumns(k, &key_columns);
      }
      CollectExprColumns(node->residual, &key_columns);
      for (const auto& name : key_columns) route(name);
      PruneColumns(node->children[0], std::move(left_needed));
      PruneColumns(node->children[1], std::move(right_needed));
      // Rebuild the combined schema from the trimmed children.
      std::vector<Field> fields = node->children[0]->schema.fields();
      for (const auto& f : node->children[1]->schema.fields()) {
        Field copy = f;
        if (node->join_type == JoinType::kLeft) copy.nullable = true;
        fields.push_back(copy);
      }
      node->schema = Schema(std::move(fields));
      return;
    }
  }
}

void FoldPlanConstants(const PlanPtr& node) {
  if (node->predicate != nullptr) node->predicate = FoldExpr(node->predicate);
  for (auto& e : node->expressions) e = FoldExpr(e);
  if (node->residual != nullptr) node->residual = FoldExpr(node->residual);
  for (const auto& child : node->children) FoldPlanConstants(child);
}

// ----------------------------------------------- contradiction pruning

PlanPtr MakeEmptyScan(const Schema& schema) {
  PlanPtr scan = MakePlanNode(PlanKind::kScan);
  scan->schema = schema;
  scan->empty_scan = true;
  return scan;
}

bool IsEmptyScan(const PlanPtr& node) {
  return node->kind == PlanKind::kScan && node->empty_scan;
}

/// Replaces filter subtrees whose predicate the interval domain proves
/// always false with an empty scan, then propagates emptiness upward
/// wherever that is exact. Never through a global aggregate: COUNT(*)
/// over no rows still emits one row.
void PruneContradictions(PlanPtr& node) {
  for (auto& child : node->children) PruneContradictions(child);
  switch (node->kind) {
    case PlanKind::kScan:
      return;
    case PlanKind::kFilter: {
      if (IsEmptyScan(node->children[0])) {
        node = MakeEmptyScan(node->schema);
        return;
      }
      analysis::PredicateAnalysis a = analysis::AnalyzePredicate(
          node->predicate, node->children[0]->schema);
      if (a.contradiction) node = MakeEmptyScan(node->schema);
      return;
    }
    case PlanKind::kProject:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kDistinct:
      if (IsEmptyScan(node->children[0])) {
        node = MakeEmptyScan(node->schema);
      }
      return;
    case PlanKind::kJoin: {
      bool left_empty = IsEmptyScan(node->children[0]);
      bool right_empty = IsEmptyScan(node->children[1]);
      // An inner join is empty when either side is; a LEFT join only
      // when the probe (left) side is — an empty right side still
      // null-extends every left row.
      bool empty = node->join_type == JoinType::kInner
                       ? (left_empty || right_empty)
                       : left_empty;
      if (!empty && node->join_type == JoinType::kInner &&
          node->residual != nullptr) {
        analysis::PredicateAnalysis a =
            analysis::AnalyzePredicate(node->residual, node->schema);
        empty = a.contradiction;
      }
      if (empty) node = MakeEmptyScan(node->schema);
      return;
    }
    case PlanKind::kAggregate:
      // Grouped aggregation of no rows yields no groups; global
      // aggregation still yields its single row.
      if (!node->group_by.empty() && IsEmptyScan(node->children[0])) {
        node = MakeEmptyScan(node->schema);
      }
      return;
    case PlanKind::kUnion: {
      bool all_empty = true;
      for (const auto& child : node->children) {
        if (!IsEmptyScan(child)) all_empty = false;
      }
      if (all_empty) node = MakeEmptyScan(node->schema);
      return;
    }
  }
}

// ------------------------------------------- cross-node output trimming

/// Wraps the root in a pure-rename projection onto `required` (in root
/// schema order) when that is a strict subset of the root schema. The
/// later projection-pushdown stage then carries the narrowing all the
/// way into the scans.
void TrimOutputColumns(PlanPtr& plan,
                       const std::vector<std::string>& required) {
  std::set<std::string> wanted(required.begin(), required.end());
  std::vector<std::string> kept;
  for (const auto& f : plan->schema.fields()) {
    if (wanted.count(f.name) > 0) kept.push_back(f.name);
  }
  // Row counts must survive trimming (a consumer may only COUNT(*)).
  if (kept.empty() && plan->schema.num_fields() > 0) {
    kept.push_back(plan->schema.field(0).name);
  }
  if (kept.size() == static_cast<size_t>(plan->schema.num_fields())) {
    return;
  }
  PlanPtr project = MakePlanNode(PlanKind::kProject);
  for (const auto& name : kept) {
    project->expressions.push_back(MakeColumnRef("", name));
    project->output_names.push_back(name);
  }
  project->schema = *plan->schema.Select(kept);
  project->children = {plan};
  plan = project;
}

}  // namespace

Result<PlanPtr> OptimizePlan(PlanPtr plan, const OptimizerOptions& options) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  if (options.fold_constants) FoldPlanConstants(plan);
  if (options.prune_contradictions) PruneContradictions(plan);
  if (options.pushdown_filters) PushFiltersThroughJoins(plan);
  if (options.pushdown_predicates) PushdownPredicates(plan);
  if (options.trim_output_columns &&
      !options.required_output_columns.empty()) {
    TrimOutputColumns(plan, options.required_output_columns);
  }
  if (options.pushdown_projections) {
    std::set<std::string> needed;
    for (const auto& f : plan->schema.fields()) needed.insert(f.name);
    PruneColumns(plan, std::move(needed));
  }
  return plan;
}

}  // namespace bauplan::sql
