#include "sql/ast.h"

#include "common/strings.h"

namespace bauplan::sql {

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return table_qualifier.empty()
                 ? column_name
                 : StrCat(table_qualifier, ".", column_name);
    case ExprKind::kLiteral:
      return literal.type() == columnar::TypeId::kString ||
                     literal.type() == columnar::TypeId::kTimestamp
                 ? (literal.is_null() ? "NULL"
                                      : StrCat("'", literal.ToString(), "'"))
                 : literal.ToString();
    case ExprKind::kStar:
      return "*";
    case ExprKind::kBinary:
      return StrCat("(", left->ToString(), " ", BinaryOpToString(binary_op),
                    " ", right->ToString(), ")");
    case ExprKind::kUnary:
      return unary_op == UnaryOp::kNot ? StrCat("NOT ", left->ToString())
                                       : StrCat("-", left->ToString());
    case ExprKind::kFunction: {
      std::string inner;
      if (star_arg) {
        inner = "*";
      } else {
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) inner += ", ";
          inner += args[i]->ToString();
        }
      }
      return StrCat(function_name, "(", distinct ? "DISTINCT " : "", inner,
                    ")");
    }
    case ExprKind::kIsNull:
      return StrCat(left->ToString(), negated ? " IS NOT NULL"
                                              : " IS NULL");
    case ExprKind::kBetween:
      return StrCat(left->ToString(), negated ? " NOT BETWEEN " : " BETWEEN ",
                    between_low->ToString(), " AND ",
                    between_high->ToString());
    case ExprKind::kInList: {
      std::string inner;
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) inner += ", ";
        inner += list[i]->ToString();
      }
      return StrCat(left->ToString(), negated ? " NOT IN (" : " IN (", inner,
                    ")");
    }
    case ExprKind::kLike:
      return StrCat(left->ToString(), negated ? " NOT LIKE '" : " LIKE '",
                    pattern, "'");
    case ExprKind::kCast:
      return StrCat("CAST(", left->ToString(), " AS ",
                    columnar::TypeIdToString(cast_type), ")");
    case ExprKind::kCase: {
      std::string out = "CASE";
      for (size_t i = 0; i + 1 < list.size(); i += 2) {
        out += StrCat(" WHEN ", list[i]->ToString(), " THEN ",
                      list[i + 1]->ToString());
      }
      if (right != nullptr) out += StrCat(" ELSE ", right->ToString());
      out += " END";
      return out;
    }
  }
  return "?";
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table_qualifier = std::move(table);
  e->column_name = std::move(column);
  return e;
}

ExprPtr MakeLiteral(columnar::Value value) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(value);
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args,
                     bool distinct, bool star_arg) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunction;
  e->function_name = std::move(name);
  e->args = std::move(args);
  e->distinct = distinct;
  e->star_arg = star_arg;
  return e;
}

namespace {

bool IsAggregateName(const std::string& name) {
  return name == "COUNT" || name == "SUM" || name == "AVG" ||
         name == "MIN" || name == "MAX";
}

}  // namespace

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFunction &&
      IsAggregateName(expr.function_name)) {
    return true;
  }
  auto check = [](const ExprPtr& e) {
    return e != nullptr && ContainsAggregate(*e);
  };
  if (check(expr.left) || check(expr.right) || check(expr.between_low) ||
      check(expr.between_high)) {
    return true;
  }
  for (const auto& a : expr.args) {
    if (check(a)) return true;
  }
  for (const auto& e : expr.list) {
    if (check(e)) return true;
  }
  return false;
}

void CollectColumnRefs(const Expr& expr, std::vector<std::string>* out) {
  if (expr.kind == ExprKind::kColumnRef) {
    out->push_back(expr.column_name);
  }
  auto walk = [out](const ExprPtr& e) {
    if (e != nullptr) CollectColumnRefs(*e, out);
  };
  walk(expr.left);
  walk(expr.right);
  walk(expr.between_low);
  walk(expr.between_high);
  for (const auto& a : expr.args) walk(a);
  for (const auto& e : expr.list) walk(e);
}

namespace {

void CollectRefs(const TableRef& ref, std::vector<std::string>* out) {
  if (ref.subquery != nullptr) {
    for (const auto& inner : ref.subquery->ReferencedTables()) {
      out->push_back(inner);
    }
  } else if (!ref.table_name.empty()) {
    out->push_back(ref.table_name);
  }
}

}  // namespace

std::vector<std::string> SelectStatement::ReferencedTables() const {
  std::vector<std::string> out;
  CollectRefs(from, &out);
  for (const auto& join : joins) CollectRefs(join.table, &out);
  if (union_next != nullptr) {
    for (const auto& t : union_next->ReferencedTables()) out.push_back(t);
  }
  return out;
}

}  // namespace bauplan::sql
