#include "sql/expr_eval.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <set>

#include "columnar/builder.h"
#include "columnar/datetime.h"
#include "common/strings.h"

namespace bauplan::sql {

using columnar::Array;
using columnar::ArrayPtr;
using columnar::AsBool;
using columnar::AsDouble;
using columnar::AsInt64;
using columnar::AsString;
using columnar::BoolBuilder;
using columnar::DoubleBuilder;
using columnar::Int64Builder;
using columnar::StringBuilder;
using columnar::Table;
using columnar::TypeId;
using columnar::Value;

namespace {

/// Materializes a constant array of `n` copies of `v`.
Result<ArrayPtr> ConstantArray(const Value& v, int64_t n) {
  auto builder =
      columnar::MakeBuilder(v.is_null() ? TypeId::kInt64 : v.type());
  for (int64_t i = 0; i < n; ++i) {
    BAUPLAN_RETURN_NOT_OK(builder->AppendValue(v));
  }
  return builder->Finish();
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool CompareResult(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq:
      return cmp == 0;
    case BinaryOp::kNe:
      return cmp != 0;
    case BinaryOp::kLt:
      return cmp < 0;
    case BinaryOp::kLe:
      return cmp <= 0;
    case BinaryOp::kGt:
      return cmp > 0;
    case BinaryOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

/// Typed fast path: int64-vs-int64 comparison (covers timestamps too).
ArrayPtr CompareInt64(BinaryOp op, const columnar::Int64Array& l,
                      const columnar::Int64Array& r) {
  BoolBuilder out;
  for (int64_t i = 0; i < l.length(); ++i) {
    if (l.IsNull(i) || r.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    int64_t a = l.Value(i), b = r.Value(i);
    out.Append(CompareResult(op, a < b ? -1 : (a > b ? 1 : 0)));
  }
  return out.Finish();
}

/// Coerces string literals to timestamps when compared against timestamp
/// columns (`pickup_at >= '2019-04-01'`, paper appendix Step 1).
Result<ArrayPtr> CoerceForComparison(ArrayPtr array, const Array& other) {
  if (array->type() == TypeId::kString &&
      other.type() == TypeId::kTimestamp) {
    const auto* s = AsString(*array);
    Int64Builder out(TypeId::kTimestamp);
    for (int64_t i = 0; i < s->length(); ++i) {
      if (s->IsNull(i)) {
        out.AppendNull();
        continue;
      }
      BAUPLAN_ASSIGN_OR_RETURN(int64_t micros,
                               columnar::ParseTimestampString(s->Value(i)));
      out.Append(micros);
    }
    return out.Finish();
  }
  return array;
}

Result<ArrayPtr> EvalComparison(BinaryOp op, ArrayPtr left, ArrayPtr right) {
  BAUPLAN_ASSIGN_OR_RETURN(left, CoerceForComparison(left, *right));
  BAUPLAN_ASSIGN_OR_RETURN(right, CoerceForComparison(right, *left));
  const auto* li = AsInt64(*left);
  const auto* ri = AsInt64(*right);
  if (li != nullptr && ri != nullptr) {
    return CompareInt64(op, *li, *ri);
  }
  // Generic boxed path with numeric cross-type support.
  BoolBuilder out;
  for (int64_t i = 0; i < left->length(); ++i) {
    if (left->IsNull(i) || right->IsNull(i)) {
      out.AppendNull();
      continue;
    }
    Value a = left->GetValue(i);
    Value b = right->GetValue(i);
    bool comparable =
        a.type() == b.type() ||
        (columnar::IsNumeric(a.type()) && columnar::IsNumeric(b.type()));
    if (!comparable) {
      return Status::InvalidArgument(
          StrCat("cannot compare ", columnar::TypeIdToString(a.type()),
                 " with ", columnar::TypeIdToString(b.type())));
    }
    out.Append(CompareResult(op, a.Compare(b)));
  }
  return out.Finish();
}

Result<ArrayPtr> EvalArithmetic(BinaryOp op, const ArrayPtr& left,
                                const ArrayPtr& right) {
  bool left_num = columnar::IsNumeric(left->type());
  bool right_num = columnar::IsNumeric(right->type());
  if (!left_num || !right_num) {
    return Status::InvalidArgument(
        StrCat("arithmetic needs numeric operands, got ",
               columnar::TypeIdToString(left->type()), " and ",
               columnar::TypeIdToString(right->type())));
  }
  bool as_double = op == BinaryOp::kDiv || left->type() == TypeId::kDouble ||
                   right->type() == TypeId::kDouble;
  if (as_double) {
    DoubleBuilder out;
    out.Reserve(static_cast<size_t>(left->length()));
    for (int64_t i = 0; i < left->length(); ++i) {
      if (left->IsNull(i) || right->IsNull(i)) {
        out.AppendNull();
        continue;
      }
      double a = *left->GetValue(i).AsDouble();
      double b = *right->GetValue(i).AsDouble();
      double v = 0;
      switch (op) {
        case BinaryOp::kAdd:
          v = a + b;
          break;
        case BinaryOp::kSub:
          v = a - b;
          break;
        case BinaryOp::kMul:
          v = a * b;
          break;
        case BinaryOp::kDiv:
          if (b == 0) {
            out.AppendNull();  // SQL: division by zero -> null (lenient)
            continue;
          }
          v = a / b;
          break;
        case BinaryOp::kMod:
          if (b == 0) {
            out.AppendNull();
            continue;
          }
          v = std::fmod(a, b);
          break;
        default:
          return Status::Internal("not an arithmetic op");
      }
      out.Append(v);
    }
    return out.Finish();
  }
  // Integer path (timestamps degrade to int64 here).
  const auto* li = AsInt64(*left);
  const auto* ri = AsInt64(*right);
  Int64Builder out;
  out.Reserve(static_cast<size_t>(left->length()));
  for (int64_t i = 0; i < left->length(); ++i) {
    if (li->IsNull(i) || ri->IsNull(i)) {
      out.AppendNull();
      continue;
    }
    int64_t a = li->Value(i), b = ri->Value(i);
    switch (op) {
      case BinaryOp::kAdd:
        out.Append(a + b);
        break;
      case BinaryOp::kSub:
        out.Append(a - b);
        break;
      case BinaryOp::kMul:
        out.Append(a * b);
        break;
      case BinaryOp::kMod:
        if (b == 0) {
          out.AppendNull();
        } else {
          out.Append(a % b);
        }
        break;
      default:
        return Status::Internal("not an integer arithmetic op");
    }
  }
  return out.Finish();
}

/// Three-valued AND/OR over bool arrays.
Result<ArrayPtr> EvalLogical(BinaryOp op, const ArrayPtr& left,
                             const ArrayPtr& right) {
  const auto* l = AsBool(*left);
  const auto* r = AsBool(*right);
  if (l == nullptr || r == nullptr) {
    return Status::InvalidArgument(
        StrCat(BinaryOpToString(op), " needs boolean operands"));
  }
  BoolBuilder out;
  for (int64_t i = 0; i < l->length(); ++i) {
    bool ln = l->IsNull(i), rn = r->IsNull(i);
    bool lv = !ln && l->Value(i), rv = !rn && r->Value(i);
    if (op == BinaryOp::kAnd) {
      if ((!ln && !lv) || (!rn && !rv)) {
        out.Append(false);  // false AND x == false
      } else if (ln || rn) {
        out.AppendNull();
      } else {
        out.Append(true);
      }
    } else {  // OR
      if ((!ln && lv) || (!rn && rv)) {
        out.Append(true);  // true OR x == true
      } else if (ln || rn) {
        out.AppendNull();
      } else {
        out.Append(false);
      }
    }
  }
  return out.Finish();
}

Result<ArrayPtr> EvalScalarFunction(const Expr& expr, const Table& input,
                                    std::vector<ArrayPtr> args) {
  const std::string& name = expr.function_name;
  int64_t rows = input.num_rows();
  if (name == "LOWER" || name == "UPPER") {
    if (args.size() != 1 || args[0]->type() != TypeId::kString) {
      return Status::InvalidArgument(StrCat(name, " needs a string"));
    }
    const auto* s = AsString(*args[0]);
    StringBuilder out;
    for (int64_t i = 0; i < rows; ++i) {
      if (s->IsNull(i)) {
        out.AppendNull();
      } else {
        out.Append(name == "LOWER" ? ToLower(s->Value(i))
                                   : ToUpper(s->Value(i)));
      }
    }
    return out.Finish();
  }
  if (name == "LENGTH") {
    if (args.size() != 1 || args[0]->type() != TypeId::kString) {
      return Status::InvalidArgument("LENGTH needs a string");
    }
    const auto* s = AsString(*args[0]);
    Int64Builder out;
    for (int64_t i = 0; i < rows; ++i) {
      if (s->IsNull(i)) {
        out.AppendNull();
      } else {
        out.Append(static_cast<int64_t>(s->Value(i).size()));
      }
    }
    return out.Finish();
  }
  if (name == "ABS") {
    if (args.size() != 1 || !columnar::IsNumeric(args[0]->type())) {
      return Status::InvalidArgument("ABS needs a numeric argument");
    }
    if (args[0]->type() == TypeId::kDouble) {
      const auto* d = AsDouble(*args[0]);
      DoubleBuilder out;
      for (int64_t i = 0; i < rows; ++i) {
        if (d->IsNull(i)) {
          out.AppendNull();
        } else {
          out.Append(std::fabs(d->Value(i)));
        }
      }
      return out.Finish();
    }
    const auto* v = AsInt64(*args[0]);
    Int64Builder out;
    for (int64_t i = 0; i < rows; ++i) {
      if (v->IsNull(i)) {
        out.AppendNull();
      } else {
        out.Append(v->Value(i) < 0 ? -v->Value(i) : v->Value(i));
      }
    }
    return out.Finish();
  }
  if (name == "ROUND" || name == "FLOOR" || name == "CEIL") {
    if (args.size() != 1 || !columnar::IsNumeric(args[0]->type())) {
      return Status::InvalidArgument(StrCat(name, " needs a numeric "
                                            "argument"));
    }
    DoubleBuilder out;
    for (int64_t i = 0; i < rows; ++i) {
      if (args[0]->IsNull(i)) {
        out.AppendNull();
        continue;
      }
      double v = *args[0]->GetValue(i).AsDouble();
      out.Append(name == "ROUND" ? std::round(v)
                 : name == "FLOOR" ? std::floor(v)
                                   : std::ceil(v));
    }
    return out.Finish();
  }
  if (name == "COALESCE") {
    if (args.empty()) {
      return Status::InvalidArgument("COALESCE needs arguments");
    }
    auto builder = columnar::MakeBuilder(args[0]->type());
    for (int64_t i = 0; i < rows; ++i) {
      bool appended = false;
      for (const auto& arg : args) {
        if (!arg->IsNull(i)) {
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(arg->GetValue(i)));
          appended = true;
          break;
        }
      }
      if (!appended) builder->AppendNull();
    }
    return builder->Finish();
  }
  return Status::InvalidArgument(StrCat("unknown function ", name));
}

Result<ArrayPtr> EvalCast(const Expr& expr, const ArrayPtr& input) {
  auto builder = columnar::MakeBuilder(expr.cast_type);
  for (int64_t i = 0; i < input->length(); ++i) {
    if (input->IsNull(i)) {
      builder->AppendNull();
      continue;
    }
    Value v = input->GetValue(i);
    switch (expr.cast_type) {
      case TypeId::kInt64: {
        if (v.type() == TypeId::kInt64 || v.type() == TypeId::kTimestamp) {
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(
              Value::Int64(v.int64_value())));
        } else if (v.type() == TypeId::kDouble) {
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(
              Value::Int64(static_cast<int64_t>(v.double_value()))));
        } else if (v.type() == TypeId::kBool) {
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(
              Value::Int64(v.bool_value() ? 1 : 0)));
        } else {
          int64_t parsed = 0;
          const std::string& s = v.string_value();
          auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(),
                                         parsed);
          if (ec != std::errc() || p != s.data() + s.size()) {
            return Status::InvalidArgument(
                StrCat("cannot cast '", s, "' to int64"));
          }
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(Value::Int64(parsed)));
        }
        break;
      }
      case TypeId::kDouble: {
        if (v.type() == TypeId::kString) {
          char* end = nullptr;
          double parsed = std::strtod(v.string_value().c_str(), &end);
          if (end == nullptr || *end != '\0') {
            return Status::InvalidArgument(
                StrCat("cannot cast '", v.string_value(), "' to double"));
          }
          BAUPLAN_RETURN_NOT_OK(
              builder->AppendValue(Value::Double(parsed)));
        } else {
          BAUPLAN_ASSIGN_OR_RETURN(double d, v.AsDouble());
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(Value::Double(d)));
        }
        break;
      }
      case TypeId::kString:
        BAUPLAN_RETURN_NOT_OK(
            builder->AppendValue(Value::String(v.ToString())));
        break;
      case TypeId::kTimestamp: {
        if (v.type() == TypeId::kString) {
          BAUPLAN_ASSIGN_OR_RETURN(
              int64_t micros,
              columnar::ParseTimestampString(v.string_value()));
          BAUPLAN_RETURN_NOT_OK(
              builder->AppendValue(Value::Timestamp(micros)));
        } else if (v.type() == TypeId::kInt64 ||
                   v.type() == TypeId::kTimestamp) {
          BAUPLAN_RETURN_NOT_OK(
              builder->AppendValue(Value::Timestamp(v.int64_value())));
        } else {
          return Status::InvalidArgument("cannot cast to timestamp");
        }
        break;
      }
      case TypeId::kBool:
        if (v.type() == TypeId::kBool) {
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(v));
        } else {
          return Status::InvalidArgument("cannot cast to bool");
        }
        break;
    }
  }
  return builder->Finish();
}

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative glob matching with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<ArrayPtr> EvaluateExpr(const Expr& expr, const Table& input) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return input.GetColumnByName(expr.column_name);
    case ExprKind::kLiteral:
      return ConstantArray(expr.literal, input.num_rows());
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' cannot be evaluated as a value");
    case ExprKind::kBinary: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr left,
                               EvaluateExpr(*expr.left, input));
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr right,
                               EvaluateExpr(*expr.right, input));
      if (IsComparison(expr.binary_op)) {
        return EvalComparison(expr.binary_op, std::move(left),
                              std::move(right));
      }
      if (expr.binary_op == BinaryOp::kAnd ||
          expr.binary_op == BinaryOp::kOr) {
        return EvalLogical(expr.binary_op, left, right);
      }
      return EvalArithmetic(expr.binary_op, left, right);
    }
    case ExprKind::kUnary: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr operand,
                               EvaluateExpr(*expr.left, input));
      if (expr.unary_op == UnaryOp::kNot) {
        const auto* b = AsBool(*operand);
        if (b == nullptr) {
          return Status::InvalidArgument("NOT needs a boolean operand");
        }
        BoolBuilder out;
        for (int64_t i = 0; i < b->length(); ++i) {
          if (b->IsNull(i)) {
            out.AppendNull();
          } else {
            out.Append(!b->Value(i));
          }
        }
        return out.Finish();
      }
      // Negation.
      if (operand->type() == TypeId::kDouble) {
        const auto* d = columnar::AsDouble(*operand);
        DoubleBuilder out;
        for (int64_t i = 0; i < d->length(); ++i) {
          if (d->IsNull(i)) {
            out.AppendNull();
          } else {
            out.Append(-d->Value(i));
          }
        }
        return out.Finish();
      }
      const auto* v = AsInt64(*operand);
      if (v == nullptr) {
        return Status::InvalidArgument("'-' needs a numeric operand");
      }
      Int64Builder out;
      for (int64_t i = 0; i < v->length(); ++i) {
        if (v->IsNull(i)) {
          out.AppendNull();
        } else {
          out.Append(-v->Value(i));
        }
      }
      return out.Finish();
    }
    case ExprKind::kFunction: {
      std::vector<ArrayPtr> args;
      for (const auto& arg : expr.args) {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr a, EvaluateExpr(*arg, input));
        args.push_back(std::move(a));
      }
      return EvalScalarFunction(expr, input, std::move(args));
    }
    case ExprKind::kIsNull: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr operand,
                               EvaluateExpr(*expr.left, input));
      BoolBuilder out;
      for (int64_t i = 0; i < operand->length(); ++i) {
        bool is_null = operand->IsNull(i);
        out.Append(expr.negated ? !is_null : is_null);
      }
      return out.Finish();
    }
    case ExprKind::kBetween: {
      // x BETWEEN a AND b == x >= a AND x <= b (3VL falls out of those).
      ExprPtr ge = MakeBinary(BinaryOp::kGe, expr.left, expr.between_low);
      ExprPtr le = MakeBinary(BinaryOp::kLe, expr.left, expr.between_high);
      ExprPtr both = MakeBinary(BinaryOp::kAnd, ge, le);
      if (expr.negated) both = MakeUnary(UnaryOp::kNot, both);
      return EvaluateExpr(*both, input);
    }
    case ExprKind::kInList: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr operand,
                               EvaluateExpr(*expr.left, input));
      // Evaluate list items as constants (IN lists are literal-only).
      std::vector<Value> items;
      for (const auto& item : expr.list) {
        BAUPLAN_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*item));
        items.push_back(std::move(v));
      }
      BoolBuilder out;
      for (int64_t i = 0; i < operand->length(); ++i) {
        if (operand->IsNull(i)) {
          out.AppendNull();
          continue;
        }
        Value v = operand->GetValue(i);
        bool found = false;
        bool has_null = false;
        for (const auto& item : items) {
          if (item.is_null()) {
            has_null = true;
          } else if (item.Compare(v) == 0) {
            found = true;
            break;
          }
        }
        if (found) {
          out.Append(!expr.negated);
        } else if (has_null) {
          out.AppendNull();  // x IN (..., NULL) is unknown when not found
        } else {
          out.Append(expr.negated);
        }
      }
      return out.Finish();
    }
    case ExprKind::kLike: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr operand,
                               EvaluateExpr(*expr.left, input));
      const auto* s = AsString(*operand);
      if (s == nullptr) {
        return Status::InvalidArgument("LIKE needs a string operand");
      }
      BoolBuilder out;
      for (int64_t i = 0; i < s->length(); ++i) {
        if (s->IsNull(i)) {
          out.AppendNull();
          continue;
        }
        bool match = LikeMatch(s->Value(i), expr.pattern);
        out.Append(expr.negated ? !match : match);
      }
      return out.Finish();
    }
    case ExprKind::kCast: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr operand,
                               EvaluateExpr(*expr.left, input));
      return EvalCast(expr, operand);
    }
    case ExprKind::kCase: {
      // Evaluate all branches, then pick per row (simple, fully
      // vectorized; short-circuiting would need masks).
      std::vector<ArrayPtr> conditions, results;
      for (size_t i = 0; i + 1 < expr.list.size(); i += 2) {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr c,
                                 EvaluateExpr(*expr.list[i], input));
        if (AsBool(*c) == nullptr) {
          return Status::InvalidArgument("CASE WHEN needs a boolean");
        }
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr r,
                                 EvaluateExpr(*expr.list[i + 1], input));
        conditions.push_back(std::move(c));
        results.push_back(std::move(r));
      }
      ArrayPtr else_result;
      if (expr.right != nullptr) {
        BAUPLAN_ASSIGN_OR_RETURN(else_result,
                                 EvaluateExpr(*expr.right, input));
      }
      TypeId out_type = results.empty() ? TypeId::kInt64 :
                        results[0]->type();
      auto builder = columnar::MakeBuilder(out_type);
      for (int64_t row = 0; row < input.num_rows(); ++row) {
        bool taken = false;
        for (size_t b = 0; b < conditions.size(); ++b) {
          const auto* cond = AsBool(*conditions[b]);
          if (!cond->IsNull(row) && cond->Value(row)) {
            if (results[b]->IsNull(row)) {
              builder->AppendNull();
            } else {
              BAUPLAN_RETURN_NOT_OK(
                  builder->AppendValue(results[b]->GetValue(row)));
            }
            taken = true;
            break;
          }
        }
        if (!taken) {
          if (else_result != nullptr && !else_result->IsNull(row)) {
            BAUPLAN_RETURN_NOT_OK(
                builder->AppendValue(else_result->GetValue(row)));
          } else {
            builder->AppendNull();
          }
        }
      }
      return builder->Finish();
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Value> EvaluateConstant(const Expr& expr) {
  std::vector<std::string> refs;
  CollectColumnRefs(expr, &refs);
  if (!refs.empty()) {
    return Status::InvalidArgument(
        StrCat("expression is not constant: ", expr.ToString()));
  }
  // Evaluate against a one-row dummy table.
  Table dummy = *Table::Make(
      columnar::Schema({{"_", TypeId::kInt64, false}}), [] {
        Int64Builder b;
        b.Append(0);
        return std::vector<ArrayPtr>{b.Finish()};
      }());
  BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr result, EvaluateExpr(expr, dummy));
  if (result->length() != 1) {
    return Status::Internal("constant evaluation produced multiple rows");
  }
  return result->GetValue(0);
}

}  // namespace bauplan::sql
