#include "sql/expr_eval.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <set>

#include "columnar/builder.h"
#include "columnar/compute.h"
#include "columnar/datetime.h"
#include "common/strings.h"

namespace bauplan::sql {

using columnar::Array;
using columnar::ArrayPtr;
using columnar::AsBool;
using columnar::AsDouble;
using columnar::AsInt64;
using columnar::AsString;
using columnar::BoolBuilder;
using columnar::DoubleBuilder;
using columnar::Int64Builder;
using columnar::StringBuilder;
using columnar::Table;
using columnar::TypeId;
using columnar::Value;

namespace {

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

columnar::CompareOp ToCompareOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return columnar::CompareOp::kEq;
    case BinaryOp::kNe:
      return columnar::CompareOp::kNe;
    case BinaryOp::kLt:
      return columnar::CompareOp::kLt;
    case BinaryOp::kLe:
      return columnar::CompareOp::kLe;
    case BinaryOp::kGt:
      return columnar::CompareOp::kGt;
    default:
      return columnar::CompareOp::kGe;
  }
}

/// Coerces string literals to timestamps when compared against timestamp
/// columns (`pickup_at >= '2019-04-01'`, paper appendix Step 1).
Result<ArrayPtr> CoerceForComparison(ArrayPtr array, const Array& other) {
  if (array->type() == TypeId::kString &&
      other.type() == TypeId::kTimestamp) {
    const auto* s = AsString(*array);
    Int64Builder out(TypeId::kTimestamp);
    for (int64_t i = 0; i < s->length(); ++i) {
      if (s->IsNull(i)) {
        out.AppendNull();
        continue;
      }
      BAUPLAN_ASSIGN_OR_RETURN(int64_t micros,
                               columnar::ParseTimestampString(s->Value(i)));
      out.Append(micros);
    }
    return out.Finish();
  }
  return array;
}

Result<ArrayPtr> EvalComparison(BinaryOp op, ArrayPtr left, ArrayPtr right) {
  BAUPLAN_ASSIGN_OR_RETURN(left, CoerceForComparison(left, *right));
  BAUPLAN_ASSIGN_OR_RETURN(right, CoerceForComparison(right, *left));
  return columnar::CompareArrays(ToCompareOp(op), *left, *right);
}

Result<ArrayPtr> EvalArithmetic(BinaryOp op, const ArrayPtr& left,
                                const ArrayPtr& right) {
  columnar::ArithOp aop;
  switch (op) {
    case BinaryOp::kAdd:
      aop = columnar::ArithOp::kAdd;
      break;
    case BinaryOp::kSub:
      aop = columnar::ArithOp::kSub;
      break;
    case BinaryOp::kMul:
      aop = columnar::ArithOp::kMul;
      break;
    case BinaryOp::kDiv:
      aop = columnar::ArithOp::kDiv;
      break;
    case BinaryOp::kMod:
      aop = columnar::ArithOp::kMod;
      break;
    default:
      return Status::Internal("not an arithmetic op");
  }
  return columnar::ArithmeticArrays(aop, *left, *right);
}

/// Three-valued AND/OR over bool arrays.
Result<ArrayPtr> EvalLogical(BinaryOp op, const ArrayPtr& left,
                             const ArrayPtr& right) {
  if (AsBool(*left) == nullptr || AsBool(*right) == nullptr) {
    return Status::InvalidArgument(
        StrCat(BinaryOpToString(op), " needs boolean operands"));
  }
  return op == BinaryOp::kAnd ? columnar::AndArrays(*left, *right)
                              : columnar::OrArrays(*left, *right);
}

Result<ArrayPtr> EvalScalarFunction(const Expr& expr, const Table& input,
                                    std::vector<ArrayPtr> args) {
  const std::string& name = expr.function_name;
  int64_t rows = input.num_rows();
  if (name == "LOWER" || name == "UPPER") {
    if (args.size() != 1 || args[0]->type() != TypeId::kString) {
      return Status::InvalidArgument(StrCat(name, " needs a string"));
    }
    const auto* s = AsString(*args[0]);
    StringBuilder out;
    for (int64_t i = 0; i < rows; ++i) {
      if (s->IsNull(i)) {
        out.AppendNull();
      } else {
        out.Append(name == "LOWER" ? ToLower(s->Value(i))
                                   : ToUpper(s->Value(i)));
      }
    }
    return out.Finish();
  }
  if (name == "LENGTH") {
    if (args.size() != 1 || args[0]->type() != TypeId::kString) {
      return Status::InvalidArgument("LENGTH needs a string");
    }
    const auto* s = AsString(*args[0]);
    Int64Builder out;
    for (int64_t i = 0; i < rows; ++i) {
      if (s->IsNull(i)) {
        out.AppendNull();
      } else {
        out.Append(static_cast<int64_t>(s->Value(i).size()));
      }
    }
    return out.Finish();
  }
  if (name == "ABS") {
    if (args.size() != 1 || !columnar::IsNumeric(args[0]->type())) {
      return Status::InvalidArgument("ABS needs a numeric argument");
    }
    if (args[0]->type() == TypeId::kDouble) {
      const auto* d = AsDouble(*args[0]);
      DoubleBuilder out;
      for (int64_t i = 0; i < rows; ++i) {
        if (d->IsNull(i)) {
          out.AppendNull();
        } else {
          out.Append(std::fabs(d->Value(i)));
        }
      }
      return out.Finish();
    }
    const auto* v = AsInt64(*args[0]);
    Int64Builder out;
    for (int64_t i = 0; i < rows; ++i) {
      if (v->IsNull(i)) {
        out.AppendNull();
      } else {
        out.Append(v->Value(i) < 0 ? -v->Value(i) : v->Value(i));
      }
    }
    return out.Finish();
  }
  if (name == "ROUND" || name == "FLOOR" || name == "CEIL") {
    if (args.size() != 1 || !columnar::IsNumeric(args[0]->type())) {
      return Status::InvalidArgument(StrCat(name, " needs a numeric "
                                            "argument"));
    }
    DoubleBuilder out;
    for (int64_t i = 0; i < rows; ++i) {
      if (args[0]->IsNull(i)) {
        out.AppendNull();
        continue;
      }
      double v = *args[0]->GetValue(i).AsDouble();
      out.Append(name == "ROUND" ? std::round(v)
                 : name == "FLOOR" ? std::floor(v)
                                   : std::ceil(v));
    }
    return out.Finish();
  }
  if (name == "COALESCE") {
    if (args.empty()) {
      return Status::InvalidArgument("COALESCE needs arguments");
    }
    auto builder = columnar::MakeBuilder(args[0]->type());
    for (int64_t i = 0; i < rows; ++i) {
      bool appended = false;
      for (const auto& arg : args) {
        if (!arg->IsNull(i)) {
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(arg->GetValue(i)));
          appended = true;
          break;
        }
      }
      if (!appended) builder->AppendNull();
    }
    return builder->Finish();
  }
  return Status::InvalidArgument(StrCat("unknown function ", name));
}

Result<ArrayPtr> EvalCast(const Expr& expr, const ArrayPtr& input) {
  auto builder = columnar::MakeBuilder(expr.cast_type);
  for (int64_t i = 0; i < input->length(); ++i) {
    if (input->IsNull(i)) {
      builder->AppendNull();
      continue;
    }
    Value v = input->GetValue(i);
    switch (expr.cast_type) {
      case TypeId::kInt64: {
        if (v.type() == TypeId::kInt64 || v.type() == TypeId::kTimestamp) {
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(
              Value::Int64(v.int64_value())));
        } else if (v.type() == TypeId::kDouble) {
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(
              Value::Int64(static_cast<int64_t>(v.double_value()))));
        } else if (v.type() == TypeId::kBool) {
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(
              Value::Int64(v.bool_value() ? 1 : 0)));
        } else {
          int64_t parsed = 0;
          const std::string& s = v.string_value();
          auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(),
                                         parsed);
          if (ec != std::errc() || p != s.data() + s.size()) {
            return Status::InvalidArgument(
                StrCat("cannot cast '", s, "' to int64"));
          }
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(Value::Int64(parsed)));
        }
        break;
      }
      case TypeId::kDouble: {
        if (v.type() == TypeId::kString) {
          char* end = nullptr;
          double parsed = std::strtod(v.string_value().c_str(), &end);
          if (end == nullptr || *end != '\0') {
            return Status::InvalidArgument(
                StrCat("cannot cast '", v.string_value(), "' to double"));
          }
          BAUPLAN_RETURN_NOT_OK(
              builder->AppendValue(Value::Double(parsed)));
        } else {
          BAUPLAN_ASSIGN_OR_RETURN(double d, v.AsDouble());
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(Value::Double(d)));
        }
        break;
      }
      case TypeId::kString:
        BAUPLAN_RETURN_NOT_OK(
            builder->AppendValue(Value::String(v.ToString())));
        break;
      case TypeId::kTimestamp: {
        if (v.type() == TypeId::kString) {
          BAUPLAN_ASSIGN_OR_RETURN(
              int64_t micros,
              columnar::ParseTimestampString(v.string_value()));
          BAUPLAN_RETURN_NOT_OK(
              builder->AppendValue(Value::Timestamp(micros)));
        } else if (v.type() == TypeId::kInt64 ||
                   v.type() == TypeId::kTimestamp) {
          BAUPLAN_RETURN_NOT_OK(
              builder->AppendValue(Value::Timestamp(v.int64_value())));
        } else {
          return Status::InvalidArgument("cannot cast to timestamp");
        }
        break;
      }
      case TypeId::kBool:
        if (v.type() == TypeId::kBool) {
          BAUPLAN_RETURN_NOT_OK(builder->AppendValue(v));
        } else {
          return Status::InvalidArgument("cannot cast to bool");
        }
        break;
    }
  }
  return builder->Finish();
}

}  // namespace

namespace {

/// Matches a '%'-free pattern segment (literals and '_') at exactly
/// text[pos, pos+seg.size()).
bool SegmentMatchesAt(std::string_view text, size_t pos,
                      std::string_view seg) {
  for (size_t i = 0; i < seg.size(); ++i) {
    if (seg[i] != '_' && seg[i] != text[pos + i]) return false;
  }
  return true;
}

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Segment matcher: split the pattern on '%' into '%'-free segments.
  // The first segment is anchored at the start, the last at the end, and
  // each middle segment greedily takes its leftmost match after the
  // previous one. Leftmost placement is always safe because later
  // segments can only benefit from more remaining text, so unlike the
  // classic backtracking glob this is O(text * pattern) worst case —
  // patterns like '%a%a%a%a%b' against long 'aaaa…' runs stay linear-ish
  // instead of exponential.
  size_t first_pct = pattern.find('%');
  if (first_pct == std::string_view::npos) {
    return text.size() == pattern.size() &&
           SegmentMatchesAt(text, 0, pattern);
  }

  // Anchored prefix (before the first '%').
  std::string_view prefix = pattern.substr(0, first_pct);
  if (text.size() < prefix.size() || !SegmentMatchesAt(text, 0, prefix)) {
    return false;
  }
  size_t pos = prefix.size();

  // Anchored suffix (after the last '%').
  size_t last_pct = pattern.rfind('%');
  std::string_view suffix = pattern.substr(last_pct + 1);
  if (text.size() - pos < suffix.size()) return false;
  size_t suffix_start = text.size() - suffix.size();
  if (!SegmentMatchesAt(text, suffix_start, suffix)) return false;

  // Middle segments float between prefix and suffix; each takes its
  // leftmost match while reserving room for the suffix.
  size_t p = first_pct;
  while (p < last_pct) {
    size_t next_pct = pattern.find('%', p + 1);
    std::string_view seg = pattern.substr(p + 1, next_pct - p - 1);
    if (!seg.empty()) {
      bool placed = false;
      while (pos + seg.size() <= suffix_start) {
        if (SegmentMatchesAt(text, pos, seg)) {
          pos += seg.size();
          placed = true;
          break;
        }
        ++pos;
      }
      if (!placed) return false;
    }
    p = next_pct;
  }
  return true;
}

Result<ArrayPtr> EvaluateExpr(const Expr& expr, const Table& input) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return input.GetColumnByName(expr.column_name);
    case ExprKind::kLiteral:
      return columnar::MakeConstantArray(expr.literal, input.num_rows());
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' cannot be evaluated as a value");
    case ExprKind::kBinary: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr left,
                               EvaluateExpr(*expr.left, input));
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr right,
                               EvaluateExpr(*expr.right, input));
      if (IsComparison(expr.binary_op)) {
        return EvalComparison(expr.binary_op, std::move(left),
                              std::move(right));
      }
      if (expr.binary_op == BinaryOp::kAnd ||
          expr.binary_op == BinaryOp::kOr) {
        return EvalLogical(expr.binary_op, left, right);
      }
      return EvalArithmetic(expr.binary_op, left, right);
    }
    case ExprKind::kUnary: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr operand,
                               EvaluateExpr(*expr.left, input));
      if (expr.unary_op == UnaryOp::kNot) {
        return columnar::NotArray(*operand);
      }
      // Negation.
      if (operand->type() == TypeId::kDouble) {
        const auto* d = columnar::AsDouble(*operand);
        DoubleBuilder out;
        for (int64_t i = 0; i < d->length(); ++i) {
          if (d->IsNull(i)) {
            out.AppendNull();
          } else {
            out.Append(-d->Value(i));
          }
        }
        return out.Finish();
      }
      const auto* v = AsInt64(*operand);
      if (v == nullptr) {
        return Status::InvalidArgument("'-' needs a numeric operand");
      }
      Int64Builder out;
      for (int64_t i = 0; i < v->length(); ++i) {
        if (v->IsNull(i)) {
          out.AppendNull();
        } else {
          out.Append(-v->Value(i));
        }
      }
      return out.Finish();
    }
    case ExprKind::kFunction: {
      std::vector<ArrayPtr> args;
      for (const auto& arg : expr.args) {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr a, EvaluateExpr(*arg, input));
        args.push_back(std::move(a));
      }
      return EvalScalarFunction(expr, input, std::move(args));
    }
    case ExprKind::kIsNull: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr operand,
                               EvaluateExpr(*expr.left, input));
      BoolBuilder out;
      for (int64_t i = 0; i < operand->length(); ++i) {
        bool is_null = operand->IsNull(i);
        out.Append(expr.negated ? !is_null : is_null);
      }
      return out.Finish();
    }
    case ExprKind::kBetween: {
      // x BETWEEN a AND b == x >= a AND x <= b (3VL falls out of those).
      ExprPtr ge = MakeBinary(BinaryOp::kGe, expr.left, expr.between_low);
      ExprPtr le = MakeBinary(BinaryOp::kLe, expr.left, expr.between_high);
      ExprPtr both = MakeBinary(BinaryOp::kAnd, ge, le);
      if (expr.negated) both = MakeUnary(UnaryOp::kNot, both);
      return EvaluateExpr(*both, input);
    }
    case ExprKind::kInList: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr operand,
                               EvaluateExpr(*expr.left, input));
      // Evaluate list items as constants (IN lists are literal-only).
      std::vector<Value> items;
      for (const auto& item : expr.list) {
        BAUPLAN_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*item));
        items.push_back(std::move(v));
      }
      BoolBuilder out;
      for (int64_t i = 0; i < operand->length(); ++i) {
        if (operand->IsNull(i)) {
          out.AppendNull();
          continue;
        }
        Value v = operand->GetValue(i);
        bool found = false;
        bool has_null = false;
        for (const auto& item : items) {
          if (item.is_null()) {
            has_null = true;
          } else if (item.Compare(v) == 0) {
            found = true;
            break;
          }
        }
        if (found) {
          out.Append(!expr.negated);
        } else if (has_null) {
          out.AppendNull();  // x IN (..., NULL) is unknown when not found
        } else {
          out.Append(expr.negated);
        }
      }
      return out.Finish();
    }
    case ExprKind::kLike: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr operand,
                               EvaluateExpr(*expr.left, input));
      const auto* s = AsString(*operand);
      if (s == nullptr) {
        return Status::InvalidArgument("LIKE needs a string operand");
      }
      BoolBuilder out;
      for (int64_t i = 0; i < s->length(); ++i) {
        if (s->IsNull(i)) {
          out.AppendNull();
          continue;
        }
        bool match = LikeMatch(s->Value(i), expr.pattern);
        out.Append(expr.negated ? !match : match);
      }
      return out.Finish();
    }
    case ExprKind::kCast: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr operand,
                               EvaluateExpr(*expr.left, input));
      return EvalCast(expr, operand);
    }
    case ExprKind::kCase: {
      // Evaluate all branches, then pick per row (simple, fully
      // vectorized; short-circuiting would need masks).
      std::vector<ArrayPtr> conditions, results;
      for (size_t i = 0; i + 1 < expr.list.size(); i += 2) {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr c,
                                 EvaluateExpr(*expr.list[i], input));
        if (AsBool(*c) == nullptr) {
          return Status::InvalidArgument("CASE WHEN needs a boolean");
        }
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr r,
                                 EvaluateExpr(*expr.list[i + 1], input));
        conditions.push_back(std::move(c));
        results.push_back(std::move(r));
      }
      ArrayPtr else_result;
      if (expr.right != nullptr) {
        BAUPLAN_ASSIGN_OR_RETURN(else_result,
                                 EvaluateExpr(*expr.right, input));
      }
      TypeId out_type = results.empty() ? TypeId::kInt64 :
                        results[0]->type();
      auto builder = columnar::MakeBuilder(out_type);
      for (int64_t row = 0; row < input.num_rows(); ++row) {
        bool taken = false;
        for (size_t b = 0; b < conditions.size(); ++b) {
          const auto* cond = AsBool(*conditions[b]);
          if (!cond->IsNull(row) && cond->Value(row)) {
            if (results[b]->IsNull(row)) {
              builder->AppendNull();
            } else {
              BAUPLAN_RETURN_NOT_OK(
                  builder->AppendValue(results[b]->GetValue(row)));
            }
            taken = true;
            break;
          }
        }
        if (!taken) {
          if (else_result != nullptr && !else_result->IsNull(row)) {
            BAUPLAN_RETURN_NOT_OK(
                builder->AppendValue(else_result->GetValue(row)));
          } else {
            builder->AppendNull();
          }
        }
      }
      return builder->Finish();
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Value> EvaluateConstant(const Expr& expr) {
  std::vector<std::string> refs;
  CollectColumnRefs(expr, &refs);
  if (!refs.empty()) {
    return Status::InvalidArgument(
        StrCat("expression is not constant: ", expr.ToString()));
  }
  // Evaluate against a one-row dummy table.
  Table dummy = *Table::Make(
      columnar::Schema({{"_", TypeId::kInt64, false}}), [] {
        Int64Builder b;
        b.Append(0);
        return std::vector<ArrayPtr>{b.Finish()};
      }());
  BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr result, EvaluateExpr(expr, dummy));
  if (result->length() != 1) {
    return Status::Internal("constant evaluation produced multiple rows");
  }
  return result->GetValue(0);
}

}  // namespace bauplan::sql
