#ifndef BAUPLAN_SQL_AST_H_
#define BAUPLAN_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/type.h"
#include "columnar/value.h"

namespace bauplan::sql {

// ------------------------------------------------------------ expressions

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kStar,
  kBinary,
  kUnary,
  kFunction,
  kIsNull,
  kBetween,
  kInList,
  kLike,
  kCast,
  kCase,
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp { kNot, kNegate };

std::string_view BinaryOpToString(BinaryOp op);

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// One SQL expression node. A closed (non-polymorphic) representation keeps
/// tree rewriting in the optimizer simple.
struct Expr {
  ExprKind kind;

  // kColumnRef
  std::string table_qualifier;  // optional "t" in t.col
  std::string column_name;

  // kLiteral
  columnar::Value literal;

  // kBinary / kUnary
  BinaryOp binary_op = BinaryOp::kEq;
  UnaryOp unary_op = UnaryOp::kNot;
  ExprPtr left;
  ExprPtr right;

  // kFunction: aggregate (COUNT/SUM/AVG/MIN/MAX) or scalar (LOWER/UPPER/
  // LENGTH/ABS/COALESCE). Uppercased name. star=true for COUNT(*).
  std::string function_name;
  std::vector<ExprPtr> args;
  bool distinct = false;
  bool star_arg = false;

  // kIsNull / kBetween / kInList / kLike share `left` as the operand.
  bool negated = false;       // IS NOT NULL / NOT BETWEEN / NOT IN / NOT LIKE
  ExprPtr between_low;        // kBetween
  ExprPtr between_high;       // kBetween
  std::vector<ExprPtr> list;  // kInList
  std::string pattern;        // kLike

  // kCast
  columnar::TypeId cast_type = columnar::TypeId::kInt64;

  // kCase: WHEN list[2i] THEN list[2i+1], optional ELSE in `right`.
  // (list holds condition/result pairs.)

  /// Renders the expression back to SQL-ish text (for plans and errors).
  std::string ToString() const;
};

ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeLiteral(columnar::Value value);
ExprPtr MakeStar();
ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args,
                     bool distinct = false, bool star_arg = false);

/// True when the expression is or contains an aggregate function call.
bool ContainsAggregate(const Expr& expr);

/// Collects the names of all columns referenced by `expr` into `out`
/// (qualified refs keep only the column name).
void CollectColumnRefs(const Expr& expr, std::vector<std::string>* out);

// ------------------------------------------------------------- statements

/// One item of the SELECT list: an expression plus optional alias.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty = derive from expression
};

enum class JoinType { kInner, kLeft };

struct SelectStatement;

/// FROM clause item: a base table or a parenthesized subquery (derived
/// table), optionally followed by joins.
struct TableRef {
  std::string table_name;
  std::string alias;  // empty = table_name
  /// Non-null for derived tables: FROM (SELECT ...) alias.
  std::shared_ptr<SelectStatement> subquery;
};

struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef table;
  ExprPtr on;
};

struct OrderKey {
  ExprPtr expr;
  bool ascending = true;
};

/// A parsed SELECT statement (the only statement kind the engine runs;
/// writes go through the table/catalog APIs, matching the paper's
/// one-query-one-artifact model).
struct SelectStatement {
  /// SELECT DISTINCT: deduplicate output rows.
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;            // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;           // may be null
  std::vector<OrderKey> order_by;
  int64_t limit = -1;       // -1 = no limit
  /// UNION ALL continuation; non-null chains further SELECTs. Unioned
  /// selects cannot carry ORDER BY/LIMIT themselves — wrap the union in
  /// a derived table to sort or truncate it.
  std::shared_ptr<SelectStatement> union_next;

  /// All table names referenced in FROM/JOIN, in appearance order. The
  /// pipeline layer uses this for implicit DAG extraction (paper 4.4.1).
  std::vector<std::string> ReferencedTables() const;
};

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_AST_H_
