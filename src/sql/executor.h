#ifndef BAUPLAN_SQL_EXECUTOR_H_
#define BAUPLAN_SQL_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "format/predicate.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "sql/logical_plan.h"

namespace bauplan::storage {
class ObjectStore;
}  // namespace bauplan::storage

namespace bauplan::sql {

/// How Scan nodes obtain data. The engine binds this to the lakehouse
/// (branch-aware, with partition/zone-map pruning) or to in-memory tables.
class TableSource {
 public:
  virtual ~TableSource() = default;

  /// Materializes `columns` of `name` (empty = all columns, schema order).
  /// `predicates` are advisory pruning hints: the source may return
  /// non-matching rows (the plan re-applies filters exactly), but must
  /// never drop matching ones.
  virtual Result<columnar::Table> ScanTable(
      const std::string& name, const std::vector<std::string>& columns,
      const std::vector<format::ColumnPredicate>& predicates) = 0;
};

/// Per-query execution counters. Mirrored into a MetricsRegistry as
/// `exec.*` counters when ExecOptions::metrics is set (`peak_bytes` maps
/// onto the `exec.peak_bytes` gauge via SetMax).
struct ExecStats {
  int64_t rows_scanned = 0;
  int64_t rows_output = 0;
  int64_t operators_executed = 0;
  int64_t rows_filtered = 0;    // rows dropped by Filter operators
  int64_t groups = 0;           // groups produced by Aggregate operators
  int64_t join_probe_rows = 0;  // probe-side rows fed to HashJoin
  /// Morsels that ran to completion. `morsels_scheduled` counts what the
  /// dispatch plan enqueued; the two differ only when a streaming LIMIT
  /// short-circuits a pipeline before its tail morsels run.
  int64_t morsels = 0;
  int64_t morsels_scheduled = 0;
  /// Pipelines compiled and driven by the streaming engine (0 under the
  /// materialized or scalar engines).
  int64_t pipelines = 0;
  /// Largest single intermediate the engine materialized: any per-morsel
  /// chunk on a streaming pipeline, any breaker input/output, any
  /// materialized operator output. Scan source tables are inputs, not
  /// intermediates, and do not count.
  int64_t peak_bytes = 0;
  int64_t spill_partitions = 0;     // partitions written by spilling ops
  int64_t spill_bytes_written = 0;  // serialized bytes put to spill store
  int64_t spill_bytes_read = 0;     // serialized bytes read back
  /// Hash partitions used by parallel breaker builds/merges (join build +
  /// aggregate merge). Stays 0 when every breaker ran single-partition.
  int64_t breaker_partitions = 0;
  /// Sorted runs produced by the parallel sort breaker (0 when sorts ran
  /// as one serial run).
  int64_t sort_runs = 0;
  /// Morsels a top-N sort short-circuit proved irrelevant and skipped
  /// without executing. Counted inside `morsels_scheduled` but not
  /// `morsels`.
  int64_t topn_morsels_skipped = 0;
  /// Join builds by key layout: flat int64, packed two-int64, canonical
  /// key bytes (string/mixed fast path), and hashed-bucket fallback.
  int64_t join_build_flat64 = 0;
  int64_t join_build_flat128 = 0;
  int64_t join_build_canonical = 0;
  int64_t join_build_buckets = 0;
};

/// Execution knobs for one plan run.
///
/// Determinism contract: the result bytes depend only on `engine` and the
/// plan/input — never on `threads`. Morsel partitioning is fixed by
/// `morsel_rows`, and partial results merge in morsel order, so
/// `threads=8` is bit-identical to `threads=1`.
struct ExecOptions {
  enum class Engine {
    /// Push-based pipelined execution (default): the plan splits into
    /// pipelines at breakers (hash-build, sort, full aggregate, distinct,
    /// union) and filter/project/probe/limit chains stream morsel-by-
    /// morsel without materializing intermediates. Bit-identical to
    /// kVectorized for any plan, thread count and memory budget.
    kStreaming,
    kVectorized,  // typed kernels + morsel parallelism, materialize-per-op
    kScalar,      // row-at-a-time reference operators (seed behavior)
  };
  Engine engine = Engine::kStreaming;

  /// Total threads working a query (1 = inline on the caller). The
  /// executor spins up `threads - 1` pool workers unless `pool` is set;
  /// requests beyond the hardware concurrency are clamped (an external
  /// `pool` is used as-is). Thread count never affects result bytes.
  int threads = 1;

  /// Rows per morsel; fixed across thread counts for determinism.
  int64_t morsel_rows = 64 * 1024;

  /// Optional externally-owned worker pool. When set, `threads` only
  /// bounds how many morsels run concurrently via that pool.
  ThreadPool* pool = nullptr;

  /// Per-operator span emission (null = no tracing). Spans are created on
  /// the driver thread only; morsel workers never touch the tracer.
  observability::Tracer* tracer = nullptr;
  uint64_t parent_span = 0;

  /// `exec.*` counter sink (null = stats struct only).
  observability::MetricsRegistry* metrics = nullptr;

  /// Soft cap on an operator's working-set bytes; 0 = unlimited (today's
  /// behavior). When set, the vectorized join/sort/aggregate operators
  /// degrade to spilling variants (Grace join, external merge sort,
  /// partitioned aggregation) once their input exceeds the budget.
  /// Results stay bit-identical to the in-memory path for any budget and
  /// thread count; spilling shows up as `spill` child spans and
  /// `exec.spill.*` counters. The scalar engine ignores the budget (it is
  /// the row-at-a-time reference, not a production path).
  int64_t memory_budget_bytes = 0;

  /// Where spilled partitions go (not owned). Null with a nonzero budget
  /// means each ExecutePlan call uses a private in-process store; the
  /// platform facade passes its metered spill store so spill traffic is
  /// accounted like any other storage.
  storage::ObjectStore* spill_store = nullptr;

  /// Default options with the environment overrides applied — the one
  /// place `BAUPLAN_THREADS` and `BAUPLAN_MEMORY_BUDGET` are resolved
  /// (strict ParseInt64; a malformed value is an InvalidArgument error,
  /// not a silent fallback). CLI flags layer on top as thin overrides.
  static Result<ExecOptions> FromEnv();
};

/// Executes an (optimized) plan tree. The streaming engine (default)
/// compiles the plan into pipelines split at breakers and pushes morsels
/// through each pipeline on a shared ThreadPool, materializing only at
/// breakers and the result; the vectorized engine is the
/// materialize-per-operator column-at-a-time model (kept as the
/// bit-identical baseline); the scalar engine preserves the original
/// row-at-a-time operators as the reference oracle.
Result<columnar::Table> ExecutePlan(const PlanNode& plan,
                                    TableSource* source,
                                    ExecStats* stats = nullptr,
                                    const ExecOptions& options = {});

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_EXECUTOR_H_
