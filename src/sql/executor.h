#ifndef BAUPLAN_SQL_EXECUTOR_H_
#define BAUPLAN_SQL_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "format/predicate.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "sql/logical_plan.h"

namespace bauplan::storage {
class ObjectStore;
}  // namespace bauplan::storage

namespace bauplan::sql {

/// How Scan nodes obtain data. The engine binds this to the lakehouse
/// (branch-aware, with partition/zone-map pruning) or to in-memory tables.
class TableSource {
 public:
  virtual ~TableSource() = default;

  /// Materializes `columns` of `name` (empty = all columns, schema order).
  /// `predicates` are advisory pruning hints: the source may return
  /// non-matching rows (the plan re-applies filters exactly), but must
  /// never drop matching ones.
  virtual Result<columnar::Table> ScanTable(
      const std::string& name, const std::vector<std::string>& columns,
      const std::vector<format::ColumnPredicate>& predicates) = 0;
};

/// Per-query execution counters. Mirrored into a MetricsRegistry as
/// `exec.*` counters when ExecOptions::metrics is set.
struct ExecStats {
  int64_t rows_scanned = 0;
  int64_t rows_output = 0;
  int64_t operators_executed = 0;
  int64_t rows_filtered = 0;    // rows dropped by Filter operators
  int64_t groups = 0;           // groups produced by Aggregate operators
  int64_t join_probe_rows = 0;  // probe-side rows fed to HashJoin
  int64_t morsels = 0;          // morsels dispatched (parallel or inline)
  int64_t spill_partitions = 0;     // partitions written by spilling ops
  int64_t spill_bytes_written = 0;  // serialized bytes put to spill store
  int64_t spill_bytes_read = 0;     // serialized bytes read back
};

/// Execution knobs for one plan run.
///
/// Determinism contract: the result bytes depend only on `engine` and the
/// plan/input — never on `threads`. Morsel partitioning is fixed by
/// `morsel_rows`, and partial results merge in morsel order, so
/// `threads=8` is bit-identical to `threads=1`.
struct ExecOptions {
  enum class Engine {
    kVectorized,  // typed kernels + morsel parallelism (default)
    kScalar,      // row-at-a-time reference operators (seed behavior)
  };
  Engine engine = Engine::kVectorized;

  /// Total threads working a query (1 = inline on the caller). The
  /// executor spins up `threads - 1` pool workers unless `pool` is set;
  /// requests beyond the hardware concurrency are clamped (an external
  /// `pool` is used as-is). Thread count never affects result bytes.
  int threads = 1;

  /// Rows per morsel; fixed across thread counts for determinism.
  int64_t morsel_rows = 64 * 1024;

  /// Optional externally-owned worker pool. When set, `threads` only
  /// bounds how many morsels run concurrently via that pool.
  ThreadPool* pool = nullptr;

  /// Per-operator span emission (null = no tracing). Spans are created on
  /// the driver thread only; morsel workers never touch the tracer.
  observability::Tracer* tracer = nullptr;
  uint64_t parent_span = 0;

  /// `exec.*` counter sink (null = stats struct only).
  observability::MetricsRegistry* metrics = nullptr;

  /// Soft cap on an operator's working-set bytes; 0 = unlimited (today's
  /// behavior). When set, the vectorized join/sort/aggregate operators
  /// degrade to spilling variants (Grace join, external merge sort,
  /// partitioned aggregation) once their input exceeds the budget.
  /// Results stay bit-identical to the in-memory path for any budget and
  /// thread count; spilling shows up as `spill` child spans and
  /// `exec.spill.*` counters. The scalar engine ignores the budget (it is
  /// the row-at-a-time reference, not a production path).
  int64_t memory_budget_bytes = 0;

  /// Where spilled partitions go (not owned). Null with a nonzero budget
  /// means each ExecutePlan call uses a private in-process store; the
  /// platform facade passes its metered spill store so spill traffic is
  /// accounted like any other storage.
  storage::ObjectStore* spill_store = nullptr;
};

/// Interprets a (optimized) plan tree bottom-up, fully materializing each
/// operator's output — the column-at-a-time execution model that is
/// sufficient at Reasonable Scale (paper section 3.1). The vectorized
/// engine runs scan/filter/project and partial aggregation as parallel
/// morsels over a shared ThreadPool; the scalar engine preserves the
/// original row-at-a-time operators as a baseline.
Result<columnar::Table> ExecutePlan(const PlanNode& plan,
                                    TableSource* source,
                                    ExecStats* stats = nullptr,
                                    const ExecOptions& options = {});

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_EXECUTOR_H_
