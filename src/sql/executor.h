#ifndef BAUPLAN_SQL_EXECUTOR_H_
#define BAUPLAN_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "columnar/table.h"
#include "common/result.h"
#include "format/predicate.h"
#include "sql/logical_plan.h"

namespace bauplan::sql {

/// How Scan nodes obtain data. The engine binds this to the lakehouse
/// (branch-aware, with partition/zone-map pruning) or to in-memory tables.
class TableSource {
 public:
  virtual ~TableSource() = default;

  /// Materializes `columns` of `name` (empty = all columns, schema order).
  /// `predicates` are advisory pruning hints: the source may return
  /// non-matching rows (the plan re-applies filters exactly), but must
  /// never drop matching ones.
  virtual Result<columnar::Table> ScanTable(
      const std::string& name, const std::vector<std::string>& columns,
      const std::vector<format::ColumnPredicate>& predicates) = 0;
};

/// Per-query execution counters.
struct ExecStats {
  int64_t rows_scanned = 0;
  int64_t rows_output = 0;
  int64_t operators_executed = 0;
};

/// Interprets a (optimized) plan tree bottom-up, fully materializing each
/// operator's output — the column-at-a-time execution model that is
/// sufficient at Reasonable Scale (paper section 3.1).
Result<columnar::Table> ExecutePlan(const PlanNode& plan,
                                    TableSource* source,
                                    ExecStats* stats = nullptr);

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_EXECUTOR_H_
