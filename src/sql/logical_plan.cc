#include "sql/logical_plan.h"

#include "common/strings.h"

namespace bauplan::sql {

PlanPtr MakePlanNode(PlanKind kind) {
  auto node = std::make_shared<PlanNode>();
  node->kind = kind;
  return node;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad;
  switch (kind) {
    case PlanKind::kScan: {
      if (empty_scan) {
        out += StrCat("EmptyScan(", table_name.empty() ? "∅" : table_name,
                      ")");
        break;
      }
      out += StrCat("Scan(", table_name);
      if (!scan_columns.empty()) {
        out += StrCat(", columns=[", StrJoin(scan_columns, ", "), "]");
      }
      if (!scan_predicates.empty()) {
        out += ", pushdown=[";
        for (size_t i = 0; i < scan_predicates.size(); ++i) {
          if (i > 0) out += " AND ";
          out += scan_predicates[i].ToString();
        }
        out += "]";
      }
      out += ")";
      break;
    }
    case PlanKind::kFilter:
      out += StrCat("Filter(", predicate->ToString(), ")");
      break;
    case PlanKind::kProject: {
      out += "Project(";
      for (size_t i = 0; i < expressions.size(); ++i) {
        if (i > 0) out += ", ";
        out += StrCat(expressions[i]->ToString(), " AS ", output_names[i]);
      }
      out += ")";
      break;
    }
    case PlanKind::kAggregate: {
      out += "Aggregate(";
      if (!group_by.empty()) {
        out += "by=[";
        for (size_t i = 0; i < group_by.size(); ++i) {
          if (i > 0) out += ", ";
          out += group_by[i]->ToString();
        }
        out += "], ";
      }
      out += "aggs=[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out += ", ";
        const auto& agg = aggregates[i];
        out += StrCat(agg.function, "(",
                      agg.distinct ? "DISTINCT " : "",
                      agg.arg == nullptr ? "*" : agg.arg->ToString(),
                      ") AS ", agg.output_name);
      }
      out += "])";
      break;
    }
    case PlanKind::kJoin: {
      out += StrCat(join_type == JoinType::kLeft ? "LeftJoin(" :
                    "InnerJoin(");
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) out += " AND ";
        out += StrCat(left_keys[i]->ToString(), " = ",
                      right_keys[i]->ToString());
      }
      if (residual != nullptr) {
        out += StrCat(", residual=", residual->ToString());
      }
      out += ")";
      break;
    }
    case PlanKind::kSort: {
      out += "Sort(";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += StrCat(sort_keys[i].expr->ToString(),
                      sort_keys[i].ascending ? " ASC" : " DESC");
      }
      out += ")";
      break;
    }
    case PlanKind::kLimit:
      out += StrCat("Limit(", limit, ")");
      break;
    case PlanKind::kDistinct:
      out += "Distinct()";
      break;
    case PlanKind::kUnion:
      out += StrCat("UnionAll(", children.size(), " inputs)");
      break;
  }
  out += "\n";
  for (const auto& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

}  // namespace bauplan::sql
