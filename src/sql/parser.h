#ifndef BAUPLAN_SQL_PARSER_H_
#define BAUPLAN_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace bauplan::sql {

/// Parses one SELECT statement (optionally ;-terminated).
/// InvalidArgument with position info on syntax errors.
///
/// Grammar (informal):
///   SELECT item (, item)*
///   FROM table [alias] ([INNER|LEFT [OUTER]] JOIN table [alias] ON expr)*
///   [WHERE expr] [GROUP BY expr (, expr)*] [HAVING expr]
///   [ORDER BY expr [ASC|DESC] (, ...)*] [LIMIT n]
/// Expressions: OR > AND > NOT > comparison/IS/IN/BETWEEN/LIKE >
/// additive > multiplicative > unary - > primary (literal, column, f(x),
/// CAST, CASE, parenthesized).
Result<SelectStatement> ParseSelect(std::string_view sql);

/// Convenience for dependency extraction: table names referenced by the
/// FROM/JOIN clauses of `sql`, in appearance order.
Result<std::vector<std::string>> ExtractTableReferences(std::string_view sql);

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_PARSER_H_
