#ifndef BAUPLAN_SQL_ENGINE_H_
#define BAUPLAN_SQL_ENGINE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/table.h"
#include "common/diagnostic.h"
#include "common/result.h"
#include "observability/trace.h"
#include "sql/executor.h"
#include "sql/optimizer.h"
#include "sql/planner.h"

namespace bauplan::sql {

/// Engine knobs.
struct QueryOptions {
  OptimizerOptions optimizer;
  /// When true the plan text (pre- and post-optimization) is captured in
  /// the result, like EXPLAIN ANALYZE.
  bool capture_plans = false;
  /// When set, the engine opens plan/execute child spans under
  /// `parent_span` (the caller's query span). Not owned.
  observability::Tracer* tracer = nullptr;
  uint64_t parent_span = 0;
  /// Execution knobs (engine choice, threads, morsel size, metrics sink).
  /// The tracer/parent_span fields inside are overwritten by the engine so
  /// operator spans nest under the execute span.
  ExecOptions exec;
};

/// Everything a query run produces.
struct QueryResult {
  columnar::Table table;
  ExecStats stats;
  std::string logical_plan;
  std::string physical_plan;
  /// Lint findings (BP4xxx) against the statement and pre-optimization
  /// logical plan; captured only when `capture_plans` is set, so EXPLAIN
  /// surfaces what the optimizer is about to exploit (contradictions it
  /// prunes, tautologies it drops) without taxing the hot path.
  std::vector<Diagnostic> lints;
  /// True when a platform-level result cache served this (the engine
  /// itself never sets it).
  bool from_cache = false;
  /// query -> plan -> execute span tree (the platform facade extracts it
  /// when it owns a tracer; empty otherwise).
  observability::Trace trace;
};

/// The embedded analytical engine (DuckDB stand-in): parse -> bind/plan ->
/// optimize -> execute, entirely in-process over columnar tables.
Result<QueryResult> RunQuery(std::string_view sql,
                             const SchemaResolver& resolver,
                             TableSource* source,
                             const QueryOptions& options = {});

/// In-memory table provider: resolves schemas and scans from a map of
/// materialized tables. Projection is honored; predicate hints are
/// ignored (exact filters re-apply them), which is the degenerate case
/// the TableSource contract allows.
class MemoryTableProvider : public SchemaResolver, public TableSource {
 public:
  MemoryTableProvider() = default;

  void AddTable(const std::string& name, columnar::Table table) {
    tables_[name] = std::move(table);
  }
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  Result<columnar::Schema> GetTableSchema(
      const std::string& table_name) const override;

  Result<columnar::Table> ScanTable(
      const std::string& name, const std::vector<std::string>& columns,
      const std::vector<format::ColumnPredicate>& predicates) override;

 private:
  std::map<std::string, columnar::Table> tables_;
};

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_ENGINE_H_
