#include "sql/planner.h"

#include <functional>
#include <set>

#include "common/strings.h"

namespace bauplan::sql {

using columnar::Field;
using columnar::Schema;
using columnar::TypeId;

namespace {

// ------------------------------------------------------- name resolution

/// Resolves a (qualifier, name) reference against a plan output schema,
/// returning the exact output field name to use.
Result<std::string> ResolveColumn(const Schema& schema,
                                  const std::string& qualifier,
                                  const std::string& name) {
  if (!qualifier.empty()) {
    std::string qualified = StrCat(qualifier, ".", name);
    if (schema.HasField(qualified)) return qualified;
    // Single-table scope keeps plain names; accept the qualifier as the
    // table alias when the plain name exists unambiguously.
    if (schema.HasField(name)) return name;
    return Status::NotFound(
        StrCat("column '", qualified, "' not found in ", schema.ToString()));
  }
  if (schema.HasField(name)) return name;
  // Unqualified reference into a qualified (join) schema: unique suffix.
  std::string found;
  std::string suffix = StrCat(".", name);
  for (const auto& field : schema.fields()) {
    if (EndsWith(field.name, suffix)) {
      if (!found.empty()) {
        return Status::InvalidArgument(
            StrCat("column reference '", name, "' is ambiguous (", found,
                   " vs ", field.name, ")"));
      }
      found = field.name;
    }
  }
  if (found.empty()) {
    return Status::NotFound(
        StrCat("column '", name, "' not found in ", schema.ToString()));
  }
  return found;
}

/// Rewrites all column refs in `expr` (in place) to resolved output names.
Status BindExpr(Expr* expr, const Schema& schema) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind == ExprKind::kColumnRef) {
    BAUPLAN_ASSIGN_OR_RETURN(
        std::string resolved,
        ResolveColumn(schema, expr->table_qualifier, expr->column_name));
    expr->column_name = std::move(resolved);
    expr->table_qualifier.clear();
    return Status::OK();
  }
  BAUPLAN_RETURN_NOT_OK(BindExpr(expr->left.get(), schema));
  BAUPLAN_RETURN_NOT_OK(BindExpr(expr->right.get(), schema));
  BAUPLAN_RETURN_NOT_OK(BindExpr(expr->between_low.get(), schema));
  BAUPLAN_RETURN_NOT_OK(BindExpr(expr->between_high.get(), schema));
  for (auto& arg : expr->args) {
    BAUPLAN_RETURN_NOT_OK(BindExpr(arg.get(), schema));
  }
  for (auto& item : expr->list) {
    BAUPLAN_RETURN_NOT_OK(BindExpr(item.get(), schema));
  }
  return Status::OK();
}

/// Deep-copies an expression tree (plans own their expressions so the
/// optimizer can rewrite them without mutating the AST).
ExprPtr CloneExpr(const ExprPtr& expr) {
  if (expr == nullptr) return nullptr;
  auto copy = std::make_shared<Expr>(*expr);
  copy->left = CloneExpr(expr->left);
  copy->right = CloneExpr(expr->right);
  copy->between_low = CloneExpr(expr->between_low);
  copy->between_high = CloneExpr(expr->between_high);
  for (auto& a : copy->args) a = CloneExpr(a);
  for (auto& e : copy->list) e = CloneExpr(e);
  return copy;
}

/// Derives an output column name for an unaliased select expression.
std::string DeriveName(const Expr& expr, size_t index) {
  if (expr.kind == ExprKind::kColumnRef) return expr.column_name;
  if (expr.kind == ExprKind::kFunction) {
    return ToLower(expr.function_name);
  }
  return StrCat("col", index);
}

bool IsAggregateCall(const Expr& expr) {
  return expr.kind == ExprKind::kFunction &&
         (expr.function_name == "COUNT" || expr.function_name == "SUM" ||
          expr.function_name == "AVG" || expr.function_name == "MIN" ||
          expr.function_name == "MAX");
}

/// Collects every aggregate call inside `expr` into `out` (deduplicated by
/// rendered text).
void CollectAggregates(const ExprPtr& expr, std::vector<ExprPtr>* out,
                       std::set<std::string>* seen) {
  if (expr == nullptr) return;
  if (IsAggregateCall(*expr)) {
    std::string key = expr->ToString();
    if (seen->insert(key).second) out->push_back(expr);
    return;  // aggregates do not nest
  }
  CollectAggregates(expr->left, out, seen);
  CollectAggregates(expr->right, out, seen);
  CollectAggregates(expr->between_low, out, seen);
  CollectAggregates(expr->between_high, out, seen);
  for (const auto& a : expr->args) CollectAggregates(a, out, seen);
  for (const auto& e : expr->list) CollectAggregates(e, out, seen);
}

/// Replaces aggregate calls and whole group-by expressions inside `expr`
/// with column refs into the Aggregate node's output (matched by rendered
/// text). Returns the rewritten tree.
ExprPtr RewriteOverAggregate(
    const ExprPtr& expr,
    const std::vector<std::pair<std::string, std::string>>& replacements) {
  if (expr == nullptr) return nullptr;
  std::string key = expr->ToString();
  for (const auto& [text, output] : replacements) {
    if (key == text) return MakeColumnRef("", output);
  }
  auto copy = std::make_shared<Expr>(*expr);
  copy->left = RewriteOverAggregate(expr->left, replacements);
  copy->right = RewriteOverAggregate(expr->right, replacements);
  copy->between_low = RewriteOverAggregate(expr->between_low, replacements);
  copy->between_high =
      RewriteOverAggregate(expr->between_high, replacements);
  for (auto& a : copy->args) a = RewriteOverAggregate(a, replacements);
  for (auto& e : copy->list) e = RewriteOverAggregate(e, replacements);
  return copy;
}

/// Verifies a post-aggregation expression references only aggregate
/// outputs / group keys (all rewritten to column refs that exist in
/// `schema` by now).
Status CheckAggregateScope(const Expr& expr, const Schema& schema) {
  if (expr.kind == ExprKind::kColumnRef) {
    if (!schema.HasField(expr.column_name)) {
      return Status::InvalidArgument(
          StrCat("column '", expr.column_name,
                 "' must appear in GROUP BY or inside an aggregate"));
    }
    return Status::OK();
  }
  auto check = [&schema](const ExprPtr& e) {
    return e == nullptr ? Status::OK() : CheckAggregateScope(*e, schema);
  };
  BAUPLAN_RETURN_NOT_OK(check(expr.left));
  BAUPLAN_RETURN_NOT_OK(check(expr.right));
  BAUPLAN_RETURN_NOT_OK(check(expr.between_low));
  BAUPLAN_RETURN_NOT_OK(check(expr.between_high));
  for (const auto& a : expr.args) BAUPLAN_RETURN_NOT_OK(check(a));
  for (const auto& e : expr.list) BAUPLAN_RETURN_NOT_OK(check(e));
  return Status::OK();
}

// ----------------------------------------------------------- from clause

/// Plans the FROM clause: a scan, or a left-deep chain of joins whose
/// output columns are "alias.column"-qualified.
/// Plans one FROM item: a scan node for a base table, or the recursively
/// planned subtree for a derived table.
Result<PlanPtr> PlanTableRef(const TableRef& ref,
                             const SchemaResolver& resolver) {
  if (ref.subquery != nullptr) {
    return PlanQuery(*ref.subquery, resolver);
  }
  BAUPLAN_ASSIGN_OR_RETURN(Schema schema,
                           resolver.GetTableSchema(ref.table_name));
  auto scan = MakePlanNode(PlanKind::kScan);
  scan->table_name = ref.table_name;
  scan->table_alias = ref.alias;
  scan->schema = std::move(schema);
  return scan;
}

Result<PlanPtr> PlanFrom(const SelectStatement& stmt,
                         const SchemaResolver& resolver) {
  BAUPLAN_ASSIGN_OR_RETURN(PlanPtr base, PlanTableRef(stmt.from, resolver));
  const Schema base_schema = base->schema;
  if (stmt.joins.empty()) return base;

  // Qualify the base scan's output for the join scope.
  auto qualify = [](const Schema& schema, const std::string& alias) {
    std::vector<Field> fields;
    for (const auto& f : schema.fields()) {
      fields.push_back({StrCat(alias, ".", f.name), f.type, f.nullable});
    }
    return Schema(std::move(fields));
  };

  PlanPtr left = base;
  Schema left_schema = qualify(base_schema, stmt.from.alias);
  // The executor renames scan output to qualified names via a Project.
  {
    auto project = MakePlanNode(PlanKind::kProject);
    project->children = {left};
    for (int i = 0; i < base_schema.num_fields(); ++i) {
      project->expressions.push_back(
          MakeColumnRef("", base_schema.field(i).name));
      project->output_names.push_back(left_schema.field(i).name);
    }
    project->schema = left_schema;
    left = project;
  }

  for (const auto& join : stmt.joins) {
    BAUPLAN_ASSIGN_OR_RETURN(PlanPtr right_base,
                             PlanTableRef(join.table, resolver));
    const Schema right_schema = right_base->schema;

    Schema right_qualified = qualify(right_schema, join.table.alias);
    auto right_project = MakePlanNode(PlanKind::kProject);
    right_project->children = {right_base};
    for (int i = 0; i < right_schema.num_fields(); ++i) {
      right_project->expressions.push_back(
          MakeColumnRef("", right_schema.field(i).name));
      right_project->output_names.push_back(right_qualified.field(i).name);
    }
    right_project->schema = right_qualified;

    // Combined scope.
    std::vector<Field> combined = left_schema.fields();
    for (const auto& f : right_qualified.fields()) {
      Field copy = f;
      if (join.type == JoinType::kLeft) copy.nullable = true;
      combined.push_back(copy);
    }
    Schema combined_schema(std::move(combined));

    // Bind ON against the combined scope, then split equi-keys.
    ExprPtr on = CloneExpr(join.on);
    BAUPLAN_RETURN_NOT_OK(BindExpr(on.get(), combined_schema));

    auto join_node = MakePlanNode(PlanKind::kJoin);
    join_node->join_type = join.type;
    join_node->children = {left, right_project};
    join_node->schema = combined_schema;

    // Decompose the ON conjunction into equi-keys (one side referencing
    // only left columns, the other only right) and a residual.
    std::vector<ExprPtr> conjuncts;
    std::function<void(const ExprPtr&)> split = [&](const ExprPtr& e) {
      if (e != nullptr && e->kind == ExprKind::kBinary &&
          e->binary_op == BinaryOp::kAnd) {
        split(e->left);
        split(e->right);
      } else if (e != nullptr) {
        conjuncts.push_back(e);
      }
    };
    split(on);

    auto refs_only = [](const Expr& e, const Schema& schema) {
      std::vector<std::string> cols;
      CollectColumnRefs(e, &cols);
      for (const auto& c : cols) {
        if (!schema.HasField(c)) return false;
      }
      return !cols.empty();
    };

    ExprPtr residual;
    for (const auto& c : conjuncts) {
      bool is_key = false;
      if (c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq) {
        if (refs_only(*c->left, left_schema) &&
            refs_only(*c->right, right_qualified)) {
          join_node->left_keys.push_back(c->left);
          join_node->right_keys.push_back(c->right);
          is_key = true;
        } else if (refs_only(*c->left, right_qualified) &&
                   refs_only(*c->right, left_schema)) {
          join_node->left_keys.push_back(c->right);
          join_node->right_keys.push_back(c->left);
          is_key = true;
        }
      }
      if (!is_key) {
        residual = residual == nullptr
                       ? c
                       : MakeBinary(BinaryOp::kAnd, residual, c);
      }
    }
    if (join_node->left_keys.empty()) {
      return Status::InvalidArgument(
          StrCat("JOIN ON must contain at least one equality between the ",
                 "two sides: ", join.on->ToString()));
    }
    join_node->residual = residual;

    left = join_node;
    left_schema = combined_schema;
  }
  return left;
}

}  // namespace

// -------------------------------------------------------- type inference

Result<TypeId> InferExprType(const Expr& expr, const Schema& schema) {
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      BAUPLAN_ASSIGN_OR_RETURN(Field f,
                               schema.GetFieldByName(expr.column_name));
      return f.type;
    }
    case ExprKind::kLiteral:
      return expr.literal.is_null() ? TypeId::kInt64 : expr.literal.type();
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is not a value expression");
    case ExprKind::kBinary: {
      switch (expr.binary_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return TypeId::kBool;
        case BinaryOp::kDiv:
          return TypeId::kDouble;
        default: {
          BAUPLAN_ASSIGN_OR_RETURN(TypeId l,
                                   InferExprType(*expr.left, schema));
          BAUPLAN_ASSIGN_OR_RETURN(TypeId r,
                                   InferExprType(*expr.right, schema));
          if (l == TypeId::kDouble || r == TypeId::kDouble) {
            return TypeId::kDouble;
          }
          return TypeId::kInt64;
        }
      }
    }
    case ExprKind::kUnary:
      if (expr.unary_op == UnaryOp::kNot) return TypeId::kBool;
      return InferExprType(*expr.left, schema);
    case ExprKind::kFunction: {
      const std::string& f = expr.function_name;
      if (f == "COUNT" || f == "LENGTH") return TypeId::kInt64;
      if (f == "AVG" || f == "ROUND" || f == "FLOOR" || f == "CEIL") {
        return TypeId::kDouble;
      }
      if (f == "SUM") {
        BAUPLAN_ASSIGN_OR_RETURN(TypeId t,
                                 InferExprType(*expr.args[0], schema));
        return t == TypeId::kDouble ? TypeId::kDouble : TypeId::kInt64;
      }
      if (f == "MIN" || f == "MAX" || f == "ABS" || f == "COALESCE") {
        if (expr.args.empty()) {
          return Status::InvalidArgument(StrCat(f, " needs an argument"));
        }
        return InferExprType(*expr.args[0], schema);
      }
      if (f == "LOWER" || f == "UPPER") return TypeId::kString;
      return Status::InvalidArgument(StrCat("unknown function ", f));
    }
    case ExprKind::kIsNull:
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kLike:
      return TypeId::kBool;
    case ExprKind::kCast:
      return expr.cast_type;
    case ExprKind::kCase:
      if (expr.list.size() >= 2) {
        return InferExprType(*expr.list[1], schema);
      }
      return Status::InvalidArgument("CASE without WHEN");
  }
  return Status::Internal("unhandled expression kind");
}

// ---------------------------------------------------------------- planner

Result<PlanPtr> PlanQuery(const SelectStatement& stmt,
                          const SchemaResolver& resolver) {
  if (stmt.union_next != nullptr) {
    // Plan every branch of the UNION ALL chain, then stack them.
    auto union_node = MakePlanNode(PlanKind::kUnion);
    const SelectStatement* current = &stmt;
    while (current != nullptr) {
      SelectStatement branch = *current;
      branch.union_next = nullptr;
      BAUPLAN_ASSIGN_OR_RETURN(PlanPtr child, PlanQuery(branch, resolver));
      if (!union_node->children.empty()) {
        const Schema& first = union_node->children[0]->schema;
        const Schema& this_schema = child->schema;
        if (first.num_fields() != this_schema.num_fields()) {
          return Status::InvalidArgument(
              StrCat("UNION ALL arity mismatch: ", first.num_fields(),
                     " vs ", this_schema.num_fields(), " columns"));
        }
        for (int i = 0; i < first.num_fields(); ++i) {
          if (first.field(i).type != this_schema.field(i).type) {
            return Status::InvalidArgument(
                StrCat("UNION ALL type mismatch in column ", i + 1, ": ",
                       columnar::TypeIdToString(first.field(i).type),
                       " vs ",
                       columnar::TypeIdToString(this_schema.field(i).type)));
          }
        }
      }
      union_node->children.push_back(std::move(child));
      current = current->union_next.get();
    }
    // Output names come from the first branch (standard SQL).
    union_node->schema = union_node->children[0]->schema;
    return union_node;
  }

  BAUPLAN_ASSIGN_OR_RETURN(PlanPtr plan, PlanFrom(stmt, resolver));
  Schema scope = plan->schema;

  // WHERE.
  if (stmt.where != nullptr) {
    if (ContainsAggregate(*stmt.where)) {
      return Status::InvalidArgument(
          "aggregates are not allowed in WHERE (use HAVING)");
    }
    ExprPtr where = CloneExpr(stmt.where);
    BAUPLAN_RETURN_NOT_OK(BindExpr(where.get(), scope));
    auto filter = MakePlanNode(PlanKind::kFilter);
    filter->children = {plan};
    filter->predicate = std::move(where);
    filter->schema = scope;
    plan = filter;
  }

  // Expand SELECT * and bind select expressions.
  std::vector<ExprPtr> select_exprs;
  std::vector<std::string> select_names;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const auto& item = stmt.items[i];
    if (item.expr->kind == ExprKind::kStar) {
      for (const auto& f : scope.fields()) {
        select_exprs.push_back(MakeColumnRef("", f.name));
        select_names.push_back(f.name);
      }
      continue;
    }
    ExprPtr bound = CloneExpr(item.expr);
    BAUPLAN_RETURN_NOT_OK(BindExpr(bound.get(), scope));
    select_names.push_back(item.alias.empty()
                               ? DeriveName(*bound, select_names.size())
                               : item.alias);
    select_exprs.push_back(std::move(bound));
  }

  // HAVING and ORDER BY expressions also live in the aggregate scope.
  ExprPtr having;
  if (stmt.having != nullptr) {
    having = CloneExpr(stmt.having);
    BAUPLAN_RETURN_NOT_OK(BindExpr(having.get(), scope));
  }

  bool needs_aggregate = !stmt.group_by.empty();
  for (const auto& e : select_exprs) {
    if (ContainsAggregate(*e)) needs_aggregate = true;
  }
  if (having != nullptr) needs_aggregate = true;
  for (const auto& key : stmt.order_by) {
    if (ContainsAggregate(*key.expr)) needs_aggregate = true;
  }

  const Schema pre_agg_scope = scope;
  std::vector<std::pair<std::string, std::string>> replacements;

  if (needs_aggregate) {
    auto agg = MakePlanNode(PlanKind::kAggregate);
    agg->children = {plan};
    std::vector<Field> out_fields;
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      ExprPtr key = CloneExpr(stmt.group_by[i]);
      BAUPLAN_RETURN_NOT_OK(BindExpr(key.get(), scope));
      if (ContainsAggregate(*key)) {
        return Status::InvalidArgument("aggregates not allowed in GROUP BY");
      }
      std::string name = DeriveName(*key, i);
      // Keep names unique in the aggregate output.
      std::string unique = name;
      int suffix = 1;
      while (true) {
        bool taken = false;
        for (const auto& f : out_fields) {
          if (f.name == unique) taken = true;
        }
        if (!taken) break;
        unique = StrCat(name, "_", suffix++);
      }
      BAUPLAN_ASSIGN_OR_RETURN(TypeId type, InferExprType(*key, scope));
      out_fields.push_back({unique, type, true});
      replacements.emplace_back(key->ToString(), unique);
      agg->group_by.push_back(std::move(key));
      agg->group_names.push_back(unique);
    }

    // Aggregate calls from SELECT, HAVING, ORDER BY.
    std::vector<ExprPtr> agg_calls;
    std::set<std::string> seen;
    for (const auto& e : select_exprs) CollectAggregates(e, &agg_calls, &seen);
    if (having != nullptr) CollectAggregates(having, &agg_calls, &seen);
    for (const auto& key : stmt.order_by) {
      // Aggregate-bearing order keys (ORDER BY COUNT(*) DESC) need their
      // aggregates computed too. Keys that are pure select aliases will
      // fail this binding; they resolve against the projection later.
      ExprPtr bound = CloneExpr(key.expr);
      if (BindExpr(bound.get(), scope).ok()) {
        CollectAggregates(bound, &agg_calls, &seen);
      }
    }

    for (size_t i = 0; i < agg_calls.size(); ++i) {
      const ExprPtr& call = agg_calls[i];
      AggregateItem item;
      item.function = call->function_name;
      item.distinct = call->distinct;
      item.arg = call->star_arg ? nullptr : call->args[0];
      item.output_name = StrCat("_agg", i);
      BAUPLAN_ASSIGN_OR_RETURN(TypeId type, InferExprType(*call, scope));
      out_fields.push_back({item.output_name, type, true});
      replacements.emplace_back(call->ToString(), item.output_name);
      agg->aggregates.push_back(std::move(item));
    }
    agg->schema = Schema(out_fields);
    plan = agg;
    scope = agg->schema;

    // Rewrite select/having/order over the aggregate output.
    for (auto& e : select_exprs) {
      e = RewriteOverAggregate(e, replacements);
      BAUPLAN_RETURN_NOT_OK(CheckAggregateScope(*e, scope));
    }
    if (having != nullptr) {
      having = RewriteOverAggregate(having, replacements);
      BAUPLAN_RETURN_NOT_OK(CheckAggregateScope(*having, scope));
      auto filter = MakePlanNode(PlanKind::kFilter);
      filter->children = {plan};
      filter->predicate = having;
      filter->schema = scope;
      plan = filter;
    }
  } else if (having != nullptr) {
    return Status::InvalidArgument("HAVING requires aggregation");
  }

  // Final projection.
  auto project = MakePlanNode(PlanKind::kProject);
  project->children = {plan};
  std::vector<Field> out_fields;
  for (size_t i = 0; i < select_exprs.size(); ++i) {
    BAUPLAN_ASSIGN_OR_RETURN(TypeId type,
                             InferExprType(*select_exprs[i], scope));
    out_fields.push_back({select_names[i], type, true});
  }
  project->expressions = select_exprs;
  project->output_names = select_names;
  project->schema = Schema(out_fields);
  plan = project;

  if (stmt.distinct) {
    auto distinct = MakePlanNode(PlanKind::kDistinct);
    distinct->children = {plan};
    distinct->schema = plan->schema;
    plan = distinct;
  }

  // ORDER BY: bind against the projected output (aliases) first, falling
  // back to the pre-projection scope (hidden columns / aggregate outputs).
  if (!stmt.order_by.empty()) {
    auto sort = MakePlanNode(PlanKind::kSort);
    bool all_output = true;
    std::vector<OrderKey> keys;
    for (const auto& key : stmt.order_by) {
      ExprPtr bound = CloneExpr(key.expr);
      if (ContainsAggregate(*bound) ||
          !BindExpr(bound.get(), project->schema).ok()) {
        all_output = false;
        break;
      }
      keys.push_back({bound, key.ascending});
    }
    if (all_output) {
      sort->children = {plan};
      sort->schema = plan->schema;
      sort->sort_keys = std::move(keys);
      plan = sort;
    } else if (stmt.distinct) {
      return Status::InvalidArgument(
          "ORDER BY expressions must appear in the SELECT DISTINCT list");
    } else {
      // Sort below the projection on the wider scope (hidden base columns
      // in plain queries; group keys and aggregate outputs otherwise).
      PlanPtr input = project->children[0];
      keys.clear();
      for (const auto& key : stmt.order_by) {
        ExprPtr bound = CloneExpr(key.expr);
        if (needs_aggregate) {
          BAUPLAN_RETURN_NOT_OK(BindExpr(bound.get(), pre_agg_scope));
          bound = RewriteOverAggregate(bound, replacements);
          BAUPLAN_RETURN_NOT_OK(CheckAggregateScope(*bound, input->schema));
        } else {
          BAUPLAN_RETURN_NOT_OK(BindExpr(bound.get(), input->schema));
        }
        keys.push_back({bound, key.ascending});
      }
      sort->children = {input};
      sort->schema = input->schema;
      sort->sort_keys = std::move(keys);
      project->children[0] = sort;
    }
  }

  if (stmt.limit >= 0) {
    auto limit = MakePlanNode(PlanKind::kLimit);
    limit->children = {plan};
    limit->schema = plan->schema;
    limit->limit = stmt.limit;
    plan = limit;
  }
  return plan;
}

}  // namespace bauplan::sql
