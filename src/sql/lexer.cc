#include "sql/lexer.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <set>

#include "common/strings.h"

namespace bauplan::sql {

namespace {

const std::set<std::string>& Keywords() {
  static const auto* kKeywords = new std::set<std::string>{
      "SELECT", "FROM",  "WHERE",  "GROUP",    "BY",    "ORDER",  "ASC",
      "DESC",   "LIMIT", "AS",     "AND",      "OR",    "NOT",    "NULL",
      "IS",     "IN",    "BETWEEN", "LIKE",    "JOIN",  "INNER",  "LEFT",
      "OUTER",  "ON",    "DISTINCT", "HAVING", "CAST",  "TRUE",   "FALSE",
      "COUNT",  "SUM",   "AVG",    "MIN",      "MAX",   "CASE",   "WHEN",
      "THEN",   "ELSE",  "END",     "UNION",  "ALL"};
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word(sql.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') {
          if (is_float) break;  // second dot ends the number
          is_float = true;
        }
        ++i;
      }
      // Exponent.
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < n && (sql[exp] == '+' || sql[exp] == '-')) ++exp;
        if (exp < n && std::isdigit(static_cast<unsigned char>(sql[exp]))) {
          is_float = true;
          i = exp;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
            ++i;
          }
        }
      }
      std::string text(sql.substr(start, i - start));
      token.text = text;
      if (is_float) {
        token.type = TokenType::kFloatLiteral;
        token.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        token.type = TokenType::kIntegerLiteral;
        auto [ptr, ec] = std::from_chars(
            text.data(), text.data() + text.size(), token.int_value);
        if (ec != std::errc() || ptr != text.data() + text.size()) {
          return Status::InvalidArgument(
              StrCat("integer literal out of range at position ", start));
        }
      }
    } else if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrCat("unterminated string literal at position ",
                   token.position));
      }
      token.type = TokenType::kStringLiteral;
      token.text = std::move(text);
    } else {
      switch (c) {
        case ',':
          token.type = TokenType::kComma;
          ++i;
          break;
        case '(':
          token.type = TokenType::kLParen;
          ++i;
          break;
        case ')':
          token.type = TokenType::kRParen;
          ++i;
          break;
        case '*':
          token.type = TokenType::kStar;
          ++i;
          break;
        case '+':
          token.type = TokenType::kPlus;
          ++i;
          break;
        case '-':
          token.type = TokenType::kMinus;
          ++i;
          break;
        case '/':
          token.type = TokenType::kSlash;
          ++i;
          break;
        case '%':
          token.type = TokenType::kPercent;
          ++i;
          break;
        case '.':
          token.type = TokenType::kDot;
          ++i;
          break;
        case ';':
          token.type = TokenType::kSemicolon;
          ++i;
          break;
        case '=':
          token.type = TokenType::kEq;
          ++i;
          break;
        case '!':
          if (i + 1 < n && sql[i + 1] == '=') {
            token.type = TokenType::kNe;
            i += 2;
          } else {
            return Status::InvalidArgument(
                StrCat("stray '!' at position ", i));
          }
          break;
        case '<':
          if (i + 1 < n && sql[i + 1] == '=') {
            token.type = TokenType::kLe;
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '>') {
            token.type = TokenType::kNe;
            i += 2;
          } else {
            token.type = TokenType::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && sql[i + 1] == '=') {
            token.type = TokenType::kGe;
            i += 2;
          } else {
            token.type = TokenType::kGt;
            ++i;
          }
          break;
        default:
          return Status::InvalidArgument(
              StrCat("unexpected character '", std::string(1, c),
                     "' at position ", i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace bauplan::sql
