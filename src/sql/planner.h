#ifndef BAUPLAN_SQL_PLANNER_H_
#define BAUPLAN_SQL_PLANNER_H_

#include <string>

#include "columnar/type.h"
#include "common/result.h"
#include "sql/ast.h"
#include "sql/logical_plan.h"

namespace bauplan::sql {

/// Where the planner looks up table schemas. The engine binds this to the
/// lakehouse catalog (branch-aware) or to in-memory tables in tests.
class SchemaResolver {
 public:
  virtual ~SchemaResolver() = default;
  virtual Result<columnar::Schema> GetTableSchema(
      const std::string& table_name) const = 0;
};

/// Infers the output type of a bound expression against `schema`.
Result<columnar::TypeId> InferExprType(const Expr& expr,
                                       const columnar::Schema& schema);

/// Binds and plans one SELECT statement into a logical plan tree:
///   Limit? <- Sort? <- Project <- Filter(having)? <- Aggregate? <-
///   Filter(where)? <- Join* <- Scan
/// Name resolution rules: single-table queries use plain column names;
/// join outputs qualify every column as "alias.column" and unqualified
/// references bind when the suffix is unique.
Result<PlanPtr> PlanQuery(const SelectStatement& stmt,
                          const SchemaResolver& resolver);

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_PLANNER_H_
