#include "sql/engine.h"

#include "analysis/range_analysis.h"
#include "common/strings.h"
#include "sql/parser.h"

namespace bauplan::sql {

Result<QueryResult> RunQuery(std::string_view sql,
                             const SchemaResolver& resolver,
                             TableSource* source,
                             const QueryOptions& options) {
  QueryResult result;
  PlanPtr plan;
  {
    observability::ScopedSpan plan_span(options.tracer, "plan",
                                        observability::span_kind::kPlan,
                                        options.parent_span);
    BAUPLAN_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
    BAUPLAN_ASSIGN_OR_RETURN(plan, PlanQuery(stmt, resolver));
    if (options.capture_plans) {
      result.logical_plan = plan->ToString();
      DiagnosticEngine lints;
      analysis::LintStatement(stmt, "query", "", &lints);
      analysis::LintPlan(plan, "query", "", &lints);
      result.lints = lints.diagnostics();
    }
    BAUPLAN_ASSIGN_OR_RETURN(plan, OptimizePlan(plan, options.optimizer));
    if (options.capture_plans) result.physical_plan = plan->ToString();
  }
  {
    observability::ScopedSpan exec_span(
        options.tracer, "execute", observability::span_kind::kExecute,
        options.parent_span);
    ExecOptions exec = options.exec;
    exec.tracer = options.tracer;
    exec.parent_span = exec_span.id();
    BAUPLAN_ASSIGN_OR_RETURN(
        result.table, ExecutePlan(*plan, source, &result.stats, exec));
  }
  result.stats.rows_output = result.table.num_rows();
  return result;
}

Result<columnar::Schema> MemoryTableProvider::GetTableSchema(
    const std::string& table_name) const {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table named '", table_name, "'"));
  }
  return it->second.schema();
}

Result<columnar::Table> MemoryTableProvider::ScanTable(
    const std::string& name, const std::vector<std::string>& columns,
    const std::vector<format::ColumnPredicate>& /*predicates*/) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table named '", name, "'"));
  }
  if (columns.empty()) return it->second;
  return it->second.SelectColumns(columns);
}

}  // namespace bauplan::sql
