#include "sql/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <memory>
#include <queue>
#include <set>
#include <unordered_map>
#include <utility>

#include "columnar/builder.h"
#include "columnar/compute.h"
#include "columnar/serialize.h"
#include "common/bytes.h"
#include "common/hash.h"
#include "common/strings.h"
#include "sql/expr_eval.h"
#include "storage/object_store.h"

namespace bauplan::sql {

using columnar::Array;
using columnar::ArrayPtr;
using columnar::AsBool;
using columnar::AsDouble;
using columnar::AsInt64;
using columnar::AsString;
using columnar::Field;
using columnar::Schema;
using columnar::SelectionVector;
using columnar::Table;
using columnar::TypeId;
using columnar::Value;

namespace obs = observability;

namespace {

// ---------------------------------------------------------------- helpers

struct KeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (const auto& v : key) h = HashCombine(h, v.Hash());
    return static_cast<size_t>(h);
  }
};

struct KeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].is_null() != b[i].is_null()) return false;
      if (!a[i].is_null() && a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) < 0;
  }
};

/// Builds a table from evaluated arrays + names, deriving field types from
/// the arrays themselves.
Result<Table> TableFromArrays(const std::vector<std::string>& names,
                              std::vector<ArrayPtr> arrays) {
  std::vector<Field> fields;
  fields.reserve(arrays.size());
  for (size_t i = 0; i < arrays.size(); ++i) {
    fields.push_back({names[i], arrays[i]->type(), true});
  }
  return Table::Make(Schema(std::move(fields)), std::move(arrays));
}

// ------------------------------------------------------ execution context

/// Per-ExecutePlan state threaded through the operator tree: the bound
/// source, accumulated stats, resolved options and (optional) worker pool.
struct ExecContext {
  TableSource* source = nullptr;
  ExecStats* stats = nullptr;
  ExecOptions options;
  ThreadPool* pool = nullptr;  // null = run morsels inline

  /// Non-null only when a memory budget is active. Spill objects are
  /// written and read on the driver thread exclusively.
  storage::ObjectStore* spill = nullptr;
  uint64_t spill_query_id = 0;  // disambiguates keys on shared stores
  int64_t spill_seq = 0;        // driver-thread object counter

  /// High-water mark of materialized intermediates (per-morsel chunks,
  /// breaker inputs/outputs, operator outputs). Atomic: morsel workers
  /// record their chunk sizes concurrently; the final value lands in
  /// ExecStats::peak_bytes and the exec.peak_bytes gauge on the driver.
  std::atomic<int64_t>* peak = nullptr;

  void Count(const char* name, int64_t delta) const {
    if (options.metrics != nullptr && delta != 0) {
      options.metrics->GetCounter(name)->Increment(delta);
    }
  }

  void TrackPeak(int64_t bytes) const {
    if (peak == nullptr) return;
    int64_t cur = peak->load(std::memory_order_relaxed);
    while (bytes > cur &&
           !peak->compare_exchange_weak(cur, bytes,
                                        std::memory_order_relaxed)) {
    }
  }
};

/// One contiguous row range [begin, end) of an operator's input.
struct Morsel {
  int64_t begin = 0;
  int64_t end = 0;
};

/// Fixed partitioning of `rows` into `morsel_rows`-sized ranges. The
/// partitioning depends only on the row count, never on the thread count
/// — the root of the parallel-equals-serial determinism guarantee. Zero
/// rows still yield one empty morsel so expression evaluation runs once
/// and empty outputs come out correctly typed.
std::vector<Morsel> MakeMorsels(int64_t rows, int64_t morsel_rows) {
  std::vector<Morsel> morsels;
  if (morsel_rows <= 0) morsel_rows = 64 * 1024;
  if (rows <= 0) {
    morsels.push_back({0, 0});
    return morsels;
  }
  morsels.reserve(static_cast<size_t>((rows + morsel_rows - 1) /
                                      morsel_rows));
  for (int64_t b = 0; b < rows; b += morsel_rows) {
    morsels.push_back({b, std::min(b + morsel_rows, rows)});
  }
  return morsels;
}

/// Runs fn(0..n-1) on the context's pool (or inline). Scheduled morsels
/// count up front, completed morsels only after the batch returns: every
/// morsel here runs to completion, but streaming pipelines short-circuit
/// at a satisfied LIMIT, so exec.morsels (completed) and
/// exec.morsels_scheduled diverge there and must stay distinguishable.
void RunMorsels(const ExecContext& ctx, int64_t n,
                const std::function<void(int64_t)>& fn) {
  ctx.stats->morsels_scheduled += n;
  ctx.Count("exec.morsels_scheduled", n);
  if (ctx.pool != nullptr) {
    ctx.pool->ParallelFor(n, fn);
  } else {
    for (int64_t i = 0; i < n; ++i) fn(i);
  }
  ctx.stats->morsels += n;
  ctx.Count("exec.morsels", n);
}

Status FirstError(const std::vector<Status>& errors) {
  for (const Status& s : errors) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<Table> ExecNode(ExecContext* ctx, const PlanNode& plan,
                       uint64_t parent_span);

// ---------------------------------------------------------------- spilling
//
// When ExecOptions::memory_budget_bytes is set and an operator's input
// exceeds it, the vectorized join/sort/aggregate degrade to spilling
// variants: Grace hash join, external merge sort, and hash-partitioned
// aggregation, all staged through an ObjectStore via columnar::serialize.
// The overriding constraint is bit-identity: for any budget and thread
// count the result bytes must equal the unlimited in-memory path, so each
// variant reproduces the in-memory emission order exactly (per-operator
// notes below; determinism argument in DESIGN.md section 8).

/// Re-partitioning stops after this many levels; a partition that still
/// exceeds the budget then (an extremely skewed key, which hashing cannot
/// split) is processed in memory.
constexpr int kMaxSpillDepth = 3;
constexpr uint32_t kMaxSpillFanout = 64;
/// Partial aggregate states buffered per partition before flushing.
constexpr int64_t kAggSpillFlushRows = 4096;

bool ShouldSpill(const ExecContext& ctx, int64_t bytes) {
  return ctx.spill != nullptr && ctx.options.memory_budget_bytes > 0 &&
         bytes > ctx.options.memory_budget_bytes;
}

/// Serializes and writes one table to the spill store, returning its key.
Result<std::string> SpillWrite(ExecContext* ctx, const char* tag,
                               const Table& table) {
  std::string key = StrCat("exec-spill/q", ctx->spill_query_id, "/", tag,
                           "/", ctx->spill_seq++);
  Bytes payload = columnar::SerializeTable(table);
  int64_t nbytes = static_cast<int64_t>(payload.size());
  BAUPLAN_RETURN_NOT_OK(ctx->spill->Put(key, std::move(payload)));
  ctx->stats->spill_bytes_written += nbytes;
  ctx->Count("exec.spill.bytes_written", nbytes);
  return key;
}

/// Reads a spilled table back and deletes it: spill objects are
/// single-read scratch, so a query leaves the store empty.
Result<Table> SpillRead(ExecContext* ctx, const std::string& key) {
  BAUPLAN_ASSIGN_OR_RETURN(Bytes payload, ctx->spill->Get(key));
  int64_t nbytes = static_cast<int64_t>(payload.size());
  ctx->stats->spill_bytes_read += nbytes;
  ctx->Count("exec.spill.bytes_read", nbytes);
  BAUPLAN_ASSIGN_OR_RETURN(Table table, columnar::DeserializeTable(payload));
  BAUPLAN_RETURN_NOT_OK(ctx->spill->Delete(key));
  return table;
}

void CountSpillPartitions(const ExecContext& ctx, int64_t n) {
  ctx.stats->spill_partitions += n;
  ctx.Count("exec.spill.partitions", n);
}

/// Partition of a row hash at a recursion level. The salt makes levels
/// independent: a partition that collides at level L spreads at L+1
/// (unless all rows share one key value, which no hash can split —
/// kMaxSpillDepth bounds that case).
uint32_t SpillPartitionOf(uint64_t hash, int level, uint32_t fanout) {
  uint64_t h =
      hash + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(level + 1);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return static_cast<uint32_t>(h & (fanout - 1));
}

/// Power-of-two partition count sized so the average partition fits half
/// the budget (the other half is working space for the merge/join phase).
uint32_t SpillFanout(int64_t bytes, int64_t budget) {
  uint32_t fanout = 2;
  int64_t half = std::max<int64_t>(1, budget / 2);
  while (fanout < kMaxSpillFanout && bytes / fanout > half) fanout <<= 1;
  return fanout;
}

// ------------------------------------------------------- filter / project

Result<Table> ExecFilterVectorized(const ExecContext& ctx,
                                   const PlanNode& plan,
                                   const Table& input) {
  std::vector<Morsel> morsels =
      MakeMorsels(input.num_rows(), ctx.options.morsel_rows);
  int64_t m = static_cast<int64_t>(morsels.size());
  std::vector<SelectionVector> selected(static_cast<size_t>(m));
  std::vector<Status> errors(static_cast<size_t>(m));
  // Mask evaluation only touches the predicate's columns, so slice just
  // those per morsel instead of the whole table — string-heavy payload
  // columns are copied exactly once (by the final gather) instead of
  // twice. Falls back to full-width slices when the predicate references
  // no columns or a name fails to resolve (e.g. duplicate output names).
  Table pred_input = input;
  {
    std::vector<std::string> refs;
    CollectColumnRefs(*plan.predicate, &refs);
    std::sort(refs.begin(), refs.end());
    refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
    if (!refs.empty() &&
        refs.size() < static_cast<size_t>(input.num_columns())) {
      Result<Table> pruned = input.SelectColumns(refs);
      if (pruned.ok()) pred_input = std::move(*pruned);
    }
  }
  RunMorsels(ctx, m, [&](int64_t mi) {
    const Morsel& mo = morsels[static_cast<size_t>(mi)];
    Result<Table> slice =
        columnar::SliceTable(pred_input, mo.begin, mo.end - mo.begin);
    if (!slice.ok()) {
      errors[static_cast<size_t>(mi)] = slice.status();
      return;
    }
    Result<ArrayPtr> mask = EvaluateExpr(*plan.predicate, *slice);
    if (!mask.ok()) {
      errors[static_cast<size_t>(mi)] = mask.status();
      return;
    }
    const auto* b = AsBool(**mask);
    if (b == nullptr) {
      errors[static_cast<size_t>(mi)] = Status::InvalidArgument(
          StrCat("WHERE/HAVING must be boolean: ",
                 plan.predicate->ToString()));
      return;
    }
    SelectionVector sel = columnar::MaskToSelection(*b);
    for (int64_t& idx : sel) idx += mo.begin;
    selected[static_cast<size_t>(mi)] = std::move(sel);
  });
  BAUPLAN_RETURN_NOT_OK(FirstError(errors));

  // Merge per-morsel selections in morsel order (deterministic).
  size_t total = 0;
  for (const auto& sel : selected) total += sel.size();
  SelectionVector all;
  all.reserve(total);
  for (const auto& sel : selected) {
    all.insert(all.end(), sel.begin(), sel.end());
  }
  int64_t dropped = input.num_rows() - static_cast<int64_t>(all.size());
  ctx.stats->rows_filtered += dropped;
  ctx.Count("exec.rows_filtered", dropped);
  return columnar::TakeTable(input, all);
}

Result<Table> ExecFilterScalar(const ExecContext& ctx, const PlanNode& plan,
                               const Table& input) {
  BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr mask,
                           EvaluateExpr(*plan.predicate, input));
  const auto* b = AsBool(*mask);
  if (b == nullptr) {
    return Status::InvalidArgument(StrCat("WHERE/HAVING must be boolean: ",
                                          plan.predicate->ToString()));
  }
  BAUPLAN_ASSIGN_OR_RETURN(Table out, columnar::FilterTable(input, *b));
  int64_t dropped = input.num_rows() - out.num_rows();
  ctx.stats->rows_filtered += dropped;
  ctx.Count("exec.rows_filtered", dropped);
  return out;
}

Result<Table> ExecProjectVectorized(const ExecContext& ctx,
                                    const PlanNode& plan,
                                    const Table& input) {
  // Pure column projections (SELECT a, b ...) need no evaluation at all:
  // share the input columns, zero copy. Computed projections morselize.
  bool all_refs = !plan.expressions.empty();
  for (const auto& expr : plan.expressions) {
    if (expr->kind != ExprKind::kColumnRef) {
      all_refs = false;
      break;
    }
  }
  if (all_refs) {
    std::vector<ArrayPtr> columns;
    columns.reserve(plan.expressions.size());
    for (const auto& expr : plan.expressions) {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col,
                               input.GetColumnByName(expr->column_name));
      columns.push_back(std::move(col));
    }
    return TableFromArrays(plan.output_names, std::move(columns));
  }

  std::vector<Morsel> morsels =
      MakeMorsels(input.num_rows(), ctx.options.morsel_rows);
  int64_t m = static_cast<int64_t>(morsels.size());
  size_t ncols = plan.expressions.size();
  // parts[c][mi] = column c of morsel mi.
  std::vector<std::vector<ArrayPtr>> parts(
      ncols, std::vector<ArrayPtr>(static_cast<size_t>(m)));
  std::vector<Status> errors(static_cast<size_t>(m));
  RunMorsels(ctx, m, [&](int64_t mi) {
    const Morsel& mo = morsels[static_cast<size_t>(mi)];
    Result<Table> slice =
        columnar::SliceTable(input, mo.begin, mo.end - mo.begin);
    if (!slice.ok()) {
      errors[static_cast<size_t>(mi)] = slice.status();
      return;
    }
    for (size_t c = 0; c < ncols; ++c) {
      Result<ArrayPtr> col = EvaluateExpr(*plan.expressions[c], *slice);
      if (!col.ok()) {
        errors[static_cast<size_t>(mi)] = col.status();
        return;
      }
      parts[c][static_cast<size_t>(mi)] = std::move(*col);
    }
  });
  BAUPLAN_RETURN_NOT_OK(FirstError(errors));

  std::vector<ArrayPtr> columns;
  columns.reserve(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, columnar::ConcatArrays(parts[c]));
    columns.push_back(std::move(col));
  }
  return TableFromArrays(plan.output_names, std::move(columns));
}

Result<Table> ExecProjectScalar(const PlanNode& plan, const Table& input) {
  std::vector<ArrayPtr> columns;
  for (const auto& expr : plan.expressions) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, EvaluateExpr(*expr, input));
    columns.push_back(std::move(col));
  }
  return TableFromArrays(plan.output_names, std::move(columns));
}

// -------------------------------------------------------------- aggregate

/// Incremental state of one aggregate over one group (partial within a
/// morsel, merged across morsels in morsel order).
struct AggState {
  int64_t count = 0;
  double sum_double = 0;
  int64_t sum_int = 0;
  bool saw_double = false;
  Value min;
  Value max;
  std::set<Value, ValueLess> distinct;
};

/// Folds a later partial into an earlier one. Shared by the in-memory
/// morsel merge and the spilled partition merge so floating-point sums
/// associate identically on both paths (merge order is morsel order
/// either way).
void MergeAggState(AggState* into, const AggState& from) {
  into->count += from.count;
  into->sum_int += from.sum_int;
  into->sum_double += from.sum_double;
  into->saw_double = into->saw_double || from.saw_double;
  if (!from.min.is_null() &&
      (into->min.is_null() || from.min.Compare(into->min) < 0)) {
    into->min = from.min;
  }
  if (!from.max.is_null() &&
      (into->max.is_null() || from.max.Compare(into->max) > 0)) {
    into->max = from.max;
  }
  into->distinct.insert(from.distinct.begin(), from.distinct.end());
}

/// Typed three-way compare of two non-null rows of one array. Doubles use
/// the seed Value::Compare convention (NaN compares equal to everything),
/// so MIN/MAX results match the scalar engine.
int CompareCells(const Array& arr, int64_t x, int64_t y) {
  switch (arr.type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      const auto* v = AsInt64(arr);
      int64_t a = v->Value(x), b = v->Value(y);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kDouble: {
      const auto* v = AsDouble(arr);
      double a = v->Value(x), b = v->Value(y);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kBool: {
      const auto* v = AsBool(arr);
      int a = v->Value(x) ? 1 : 0, b = v->Value(y) ? 1 : 0;
      return a - b;
    }
    case TypeId::kString: {
      const auto* v = AsString(arr);
      int c = v->Value(x).compare(v->Value(y));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

/// Per-morsel partial aggregation result: local groups in first-seen
/// order, each with its evaluated key columns and one AggState per
/// aggregate.
struct MorselGroups {
  std::vector<ArrayPtr> key_arrays;  // evaluated over this morsel's slice
  std::vector<int64_t> rep_rows;     // local representative row per group
  std::vector<std::vector<AggState>> states;
};

/// Groups one morsel's rows (hash + typed key equality) and accumulates
/// typed partials. Runs concurrently across morsels.
Status AggregateMorsel(const PlanNode& plan, const Table& slice,
                       MorselGroups* out) {
  int64_t rows = slice.num_rows();
  for (const auto& key : plan.group_by) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*key, slice));
    out->key_arrays.push_back(std::move(arr));
  }
  std::vector<ArrayPtr> arg_arrays(plan.aggregates.size());
  for (size_t a = 0; a < plan.aggregates.size(); ++a) {
    if (plan.aggregates[a].arg != nullptr) {
      BAUPLAN_ASSIGN_OR_RETURN(
          arg_arrays[a], EvaluateExpr(*plan.aggregates[a].arg, slice));
    }
  }
  if (rows == 0) return Status::OK();

  // Assign each row a dense local group id.
  std::vector<int64_t> gids(static_cast<size_t>(rows), 0);
  if (out->key_arrays.empty()) {
    out->rep_rows.push_back(0);  // global aggregate: one group
  } else {
    std::vector<uint64_t> hashes;
    for (size_t k = 0; k < out->key_arrays.size(); ++k) {
      columnar::HashArray(*out->key_arrays[k], /*combine=*/k > 0, &hashes);
    }
    std::unordered_map<uint64_t, std::vector<int64_t>> buckets;
    buckets.reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      std::vector<int64_t>& cands = buckets[hashes[static_cast<size_t>(r)]];
      int64_t gid = -1;
      for (int64_t cand : cands) {
        if (columnar::RowsEqual(out->key_arrays, r, out->key_arrays,
                                out->rep_rows[static_cast<size_t>(cand)])) {
          gid = cand;
          break;
        }
      }
      if (gid < 0) {
        gid = static_cast<int64_t>(out->rep_rows.size());
        out->rep_rows.push_back(r);
        cands.push_back(gid);
      }
      gids[static_cast<size_t>(r)] = gid;
    }
  }
  size_t ngroups = out->rep_rows.size();
  out->states.resize(ngroups,
                     std::vector<AggState>(plan.aggregates.size()));

  // Typed accumulation, one pass per aggregate.
  for (size_t a = 0; a < plan.aggregates.size(); ++a) {
    const AggregateItem& agg = plan.aggregates[a];
    if (agg.arg == nullptr) {  // COUNT(*)
      for (int64_t r = 0; r < rows; ++r) {
        ++out->states[static_cast<size_t>(gids[static_cast<size_t>(r)])][a]
              .count;
      }
      continue;
    }
    const Array& arr = *arg_arrays[a];
    if (agg.distinct) {
      // Partial phase only fills the distinct set; counts and sums are
      // derived from the merged set so values seen in several morsels
      // are not double-counted.
      for (int64_t r = 0; r < rows; ++r) {
        if (arr.IsNull(r)) continue;
        out->states[static_cast<size_t>(gids[static_cast<size_t>(r)])][a]
            .distinct.insert(arr.GetValue(r));
      }
      continue;
    }
    bool want_sum = agg.function == "SUM" || agg.function == "AVG";
    bool want_minmax = agg.function == "MIN" || agg.function == "MAX";
    if (want_sum && !columnar::IsNumeric(arr.type())) {
      return Status::InvalidArgument(
          StrCat(agg.function, " needs a numeric argument, got ",
                 columnar::TypeIdToString(arr.type())));
    }
    bool is_double = arr.type() == TypeId::kDouble;
    const auto* iv = AsInt64(arr);
    const auto* dv = AsDouble(arr);
    std::vector<int64_t> min_row(ngroups, -1), max_row(ngroups, -1);
    for (int64_t r = 0; r < rows; ++r) {
      if (arr.IsNull(r)) continue;  // aggregates skip nulls
      size_t g = static_cast<size_t>(gids[static_cast<size_t>(r)]);
      AggState& s = out->states[g][a];
      ++s.count;
      if (want_sum) {
        if (is_double) {
          s.saw_double = true;
          s.sum_double += dv->Value(r);
        } else {
          s.sum_int += iv->Value(r);
          s.sum_double += static_cast<double>(iv->Value(r));
        }
      }
      if (want_minmax) {
        if (min_row[g] < 0 || CompareCells(arr, r, min_row[g]) < 0) {
          min_row[g] = r;
        }
        if (max_row[g] < 0 || CompareCells(arr, r, max_row[g]) > 0) {
          max_row[g] = r;
        }
      }
    }
    if (want_minmax) {
      for (size_t g = 0; g < ngroups; ++g) {
        if (min_row[g] >= 0) {
          out->states[g][a].min = arr.GetValue(min_row[g]);
          out->states[g][a].max = arr.GetValue(max_row[g]);
        }
      }
    }
  }
  return Status::OK();
}

/// Emits the final table from merged groups (shared by both engines).
Result<Table> EmitAggregateOutput(
    const PlanNode& plan, const std::vector<std::vector<Value>>& group_order,
    const std::vector<std::vector<AggState>>& group_states) {
  std::vector<std::unique_ptr<columnar::ArrayBuilder>> builders;
  for (int i = 0; i < plan.schema.num_fields(); ++i) {
    builders.push_back(columnar::MakeBuilder(plan.schema.field(i).type));
  }
  for (size_t gi = 0; gi < group_order.size(); ++gi) {
    size_t col = 0;
    for (const auto& key_value : group_order[gi]) {
      if (key_value.is_null()) {
        builders[col++]->AppendNull();
      } else {
        BAUPLAN_RETURN_NOT_OK(builders[col++]->AppendValue(key_value));
      }
    }
    for (size_t a = 0; a < plan.aggregates.size(); ++a) {
      const AggregateItem& agg = plan.aggregates[a];
      const AggState& state = group_states[gi][a];
      Value out;
      if (agg.function == "COUNT") {
        out = Value::Int64(state.count);
      } else if (state.count == 0) {
        out = Value::Null();  // SUM/AVG/MIN/MAX of no values
      } else if (agg.function == "SUM") {
        out = state.saw_double ? Value::Double(state.sum_double)
                               : Value::Int64(state.sum_int);
      } else if (agg.function == "AVG") {
        out = Value::Double(state.sum_double /
                            static_cast<double>(state.count));
      } else if (agg.function == "MIN") {
        out = state.min;
      } else if (agg.function == "MAX") {
        out = state.max;
      } else {
        return Status::Internal(StrCat("unknown aggregate ", agg.function));
      }
      if (out.is_null()) {
        builders[col++]->AppendNull();
      } else {
        BAUPLAN_RETURN_NOT_OK(builders[col++]->AppendValue(out));
      }
    }
  }
  std::vector<ArrayPtr> columns;
  for (auto& b : builders) columns.push_back(b->Finish());
  return Table::Make(plan.schema, std::move(columns));
}

/// Re-derives count/sums/min/max of DISTINCT aggregates from the merged
/// value set (deterministic: sets iterate in value order).
void FinalizeDistinct(const PlanNode& plan,
                      std::vector<std::vector<AggState>>* group_states) {
  for (auto& states : *group_states) {
    for (size_t a = 0; a < plan.aggregates.size(); ++a) {
      const AggregateItem& agg = plan.aggregates[a];
      if (!agg.distinct || agg.arg == nullptr) continue;
      AggState& s = states[a];
      s.count = static_cast<int64_t>(s.distinct.size());
      s.sum_int = 0;
      s.sum_double = 0;
      s.saw_double = false;
      for (const Value& v : s.distinct) {
        if (v.type() == TypeId::kDouble) {
          s.saw_double = true;
          s.sum_double += v.double_value();
        } else if (columnar::IsNumeric(v.type())) {
          s.sum_int += v.int64_value();
          s.sum_double += static_cast<double>(v.int64_value());
        }
      }
      if (!s.distinct.empty()) {
        s.min = *s.distinct.begin();
        s.max = *s.distinct.rbegin();
      }
    }
  }
}

/// Serial morsel-order merge of partial aggregation results, shared by
/// the materialized path and the streaming aggregate sink so the
/// first-seen group order and the float partial-sum association are
/// identical on both engines. Group keys box here — the number of groups
/// is small compared to rows, so this is off the hot path.
struct GroupMerger {
  std::unordered_map<std::vector<Value>, size_t, KeyHash, KeyEq> index;
  std::vector<std::vector<Value>> group_order;
  std::vector<std::vector<AggState>> group_states;

  void Merge(const PlanNode& plan, const MorselGroups& part) {
    for (size_t g = 0; g < part.rep_rows.size(); ++g) {
      std::vector<Value> key;
      key.reserve(part.key_arrays.size());
      for (const auto& arr : part.key_arrays) {
        key.push_back(arr->GetValue(part.rep_rows[g]));
      }
      auto [it, inserted] = index.emplace(key, group_order.size());
      if (inserted) {
        group_order.push_back(std::move(key));
        group_states.push_back(part.states[g]);
        continue;
      }
      std::vector<AggState>& into = group_states[it->second];
      const std::vector<AggState>& from = part.states[g];
      for (size_t a = 0; a < plan.aggregates.size(); ++a) {
        MergeAggState(&into[a], from[a]);
      }
    }
  }

  /// Finalizes and emits (a global aggregate over empty input still
  /// yields one row).
  Result<Table> Emit(const ExecContext& ctx, const PlanNode& plan) {
    FinalizeDistinct(plan, &group_states);
    if (plan.group_by.empty() && group_order.empty()) {
      group_order.emplace_back();
      group_states.emplace_back(plan.aggregates.size());
    }
    ctx.stats->groups += static_cast<int64_t>(group_order.size());
    ctx.Count("exec.groups", static_cast<int64_t>(group_order.size()));
    return EmitAggregateOutput(plan, group_order, group_states);
  }
};

/// Merges per-morsel partials (given in morsel order) and emits the final
/// aggregate output. Small merges run through the serial GroupMerger;
/// large grouped merges hash-partition the groups by boxed-key hash and
/// merge the partitions concurrently on the pool.
///
/// Determinism: equal keys always share a partition (KeyEq-equal keys
/// share a KeyHash — the invariant the serial merger's hash map already
/// relies on), and each partition visits its groups in ascending (morsel,
/// local gid) order — the same per-group MergeAggState sequence the serial
/// merger applies, so float partials associate identically. The final
/// stitch sorts all merged groups by first-seen (morsel, local gid): the
/// serial first-seen order is itself ascending in that coordinate (the
/// serial scan ascends through morsels and gids), so the emitted group
/// order is byte-for-byte the serial one for any partition count — the
/// same argument ExecAggregateSpilled already uses.
Result<Table> MergePartialsAndEmit(ExecContext* ctx, const PlanNode& plan,
                                   std::vector<MorselGroups> partials,
                                   uint64_t span_id) {
  int64_t total_groups = 0;
  for (const MorselGroups& p : partials) {
    total_groups += static_cast<int64_t>(p.rep_rows.size());
  }
  int part_bits = 0;
  if (ctx->pool != nullptr && ctx->options.threads > 1 &&
      !plan.group_by.empty() && total_groups >= 1024) {
    int target = std::min(ctx->options.threads, 64);
    while ((1 << part_bits) < target) ++part_bits;
  }
  size_t nparts = size_t{1} << part_bits;
  if (nparts == 1) {
    GroupMerger merger;
    for (const MorselGroups& part : partials) merger.Merge(plan, part);
    return merger.Emit(*ctx, plan);
  }

  // Box every partial's representative keys once, in parallel over
  // partials; the boxed hash routes each group to its partition.
  size_t np = partials.size();
  std::vector<std::vector<std::vector<Value>>> boxed(np);
  std::vector<std::vector<uint64_t>> hashes(np);
  ctx->pool->ParallelFor(static_cast<int64_t>(np), [&](int64_t mi) {
    const MorselGroups& part = partials[static_cast<size_t>(mi)];
    auto& bx = boxed[static_cast<size_t>(mi)];
    auto& hs = hashes[static_cast<size_t>(mi)];
    bx.resize(part.rep_rows.size());
    hs.resize(part.rep_rows.size());
    for (size_t g = 0; g < part.rep_rows.size(); ++g) {
      std::vector<Value>& key = bx[g];
      key.reserve(part.key_arrays.size());
      for (const ArrayPtr& arr : part.key_arrays) {
        key.push_back(arr->GetValue(part.rep_rows[g]));
      }
      hs[g] = KeyHash{}(key);
    }
  });

  // Per-partition merge: first-seen (morsel, gid) coordinate rides along
  // for the final stitch.
  struct PartGroup {
    int64_t mi = 0;
    int64_t gid = 0;
    std::vector<Value> key;
    std::vector<AggState> states;
  };
  std::vector<std::vector<PartGroup>> per_part(nparts);
  ctx->pool->ParallelFor(static_cast<int64_t>(nparts), [&](int64_t p) {
    std::unordered_map<std::vector<Value>, size_t, KeyHash, KeyEq> index;
    std::vector<PartGroup>& out = per_part[static_cast<size_t>(p)];
    for (size_t mi = 0; mi < np; ++mi) {
      const MorselGroups& part = partials[mi];
      for (size_t g = 0; g < part.rep_rows.size(); ++g) {
        uint64_t h = hashes[mi][g];
        if (static_cast<size_t>(h >> (64 - part_bits)) !=
            static_cast<size_t>(p)) {
          continue;
        }
        auto [it, inserted] = index.emplace(boxed[mi][g], out.size());
        if (inserted) {
          out.push_back({static_cast<int64_t>(mi), static_cast<int64_t>(g),
                         std::move(boxed[mi][g]), part.states[g]});
          continue;
        }
        std::vector<AggState>& into = out[it->second].states;
        const std::vector<AggState>& from = part.states[g];
        for (size_t a = 0; a < plan.aggregates.size(); ++a) {
          MergeAggState(&into[a], from[a]);
        }
      }
    }
  });

  ctx->stats->breaker_partitions += static_cast<int64_t>(nparts);
  ctx->Count("exec.breaker.agg_partitions", static_cast<int64_t>(nparts));
  if (ctx->options.tracer != nullptr) {
    for (size_t p = 0; p < nparts; ++p) {
      uint64_t s = ctx->options.tracer->StartSpan(
          "op.aggregate.partition", obs::span_kind::kOperator, span_id);
      ctx->options.tracer->AddAttribute(s, "partition", StrCat(p));
      ctx->options.tracer->AddAttribute(s, "groups",
                                        StrCat(per_part[p].size()));
      ctx->options.tracer->EndSpan(s);
    }
  }

  // Stitch back in ascending first-seen (morsel, gid) == the serial
  // first-seen order.
  std::vector<PartGroup> all;
  all.reserve(static_cast<size_t>(total_groups));
  for (std::vector<PartGroup>& part : per_part) {
    for (PartGroup& g : part) all.push_back(std::move(g));
  }
  std::sort(all.begin(), all.end(), [](const PartGroup& a,
                                       const PartGroup& b) {
    return a.mi != b.mi ? a.mi < b.mi : a.gid < b.gid;
  });
  std::vector<std::vector<Value>> group_order;
  std::vector<std::vector<AggState>> group_states;
  group_order.reserve(all.size());
  group_states.reserve(all.size());
  for (PartGroup& g : all) {
    group_order.push_back(std::move(g.key));
    group_states.push_back(std::move(g.states));
  }
  FinalizeDistinct(plan, &group_states);
  ctx->stats->groups += static_cast<int64_t>(group_order.size());
  ctx->Count("exec.groups", static_cast<int64_t>(group_order.size()));
  return EmitAggregateOutput(plan, group_order, group_states);
}

// Spilled aggregation. Partial states are produced by the very same
// AggregateMorsel over the very same morsel boundaries as the in-memory
// path (floating-point partial sums depend on those boundaries), then
// hash-partitioned by group key and flushed to the spill store as
// columnar state tables. Each partition merges its states in (morsel,
// local group id) order — exactly the order the in-memory merge sees —
// and the final groups are emitted in ascending first-seen (morsel,
// local group id), which is precisely the in-memory first-seen order.

/// Columnar encoding of partial aggregate states for one spill
/// partition. Schema: __mi/__gid (merge-order coordinates), one column
/// per group key, then per aggregate: count, sum_int, sum_double,
/// saw_double, min, max (argument type) and the distinct set (an array
/// serialized into a string cell).
class AggSpillWriter {
 public:
  static Result<AggSpillWriter> Make(const PlanNode& plan,
                                     const std::vector<TypeId>& key_types,
                                     const std::vector<TypeId>& arg_types) {
    AggSpillWriter w;
    w.Add("__mi", TypeId::kInt64);
    w.Add("__gid", TypeId::kInt64);
    for (size_t k = 0; k < key_types.size(); ++k) {
      w.Add(StrCat("__key", k), key_types[k]);
    }
    for (size_t a = 0; a < plan.aggregates.size(); ++a) {
      w.Add(StrCat("__a", a, "_count"), TypeId::kInt64);
      w.Add(StrCat("__a", a, "_sumi"), TypeId::kInt64);
      w.Add(StrCat("__a", a, "_sumd"), TypeId::kDouble);
      w.Add(StrCat("__a", a, "_sawd"), TypeId::kBool);
      w.Add(StrCat("__a", a, "_min"), arg_types[a]);
      w.Add(StrCat("__a", a, "_max"), arg_types[a]);
      w.Add(StrCat("__a", a, "_set"), TypeId::kString);
    }
    w.arg_types_ = arg_types;
    return w;
  }

  int64_t rows() const { return rows_; }

  Status Append(int64_t mi, int64_t gid,
                const std::vector<ArrayPtr>& key_arrays, int64_t rep_row,
                const std::vector<AggState>& states) {
    size_t c = 0;
    BAUPLAN_RETURN_NOT_OK(AppendCell(c++, Value::Int64(mi)));
    BAUPLAN_RETURN_NOT_OK(AppendCell(c++, Value::Int64(gid)));
    for (const auto& arr : key_arrays) {
      BAUPLAN_RETURN_NOT_OK(AppendCell(c++, arr->GetValue(rep_row)));
    }
    for (size_t a = 0; a < states.size(); ++a) {
      const AggState& s = states[a];
      BAUPLAN_RETURN_NOT_OK(AppendCell(c++, Value::Int64(s.count)));
      BAUPLAN_RETURN_NOT_OK(AppendCell(c++, Value::Int64(s.sum_int)));
      BAUPLAN_RETURN_NOT_OK(AppendCell(c++, Value::Double(s.sum_double)));
      BAUPLAN_RETURN_NOT_OK(AppendCell(c++, Value::Bool(s.saw_double)));
      BAUPLAN_RETURN_NOT_OK(AppendCell(c++, s.min));
      BAUPLAN_RETURN_NOT_OK(AppendCell(c++, s.max));
      if (s.distinct.empty()) {
        builders_[c++]->AppendNull();
      } else {
        auto b = columnar::MakeBuilder(arg_types_[a]);
        for (const Value& v : s.distinct) {
          BAUPLAN_RETURN_NOT_OK(b->AppendValue(v));
        }
        BinaryWriter w;
        columnar::SerializeArray(*b->Finish(), &w);
        Bytes buf = w.TakeBuffer();
        auto* sb = static_cast<columnar::StringBuilder*>(builders_[c++].get());
        sb->Append(std::string_view(reinterpret_cast<const char*>(buf.data()),
                                    buf.size()));
      }
    }
    ++rows_;
    return Status::OK();
  }

  /// Builds the pending rows into a table and resets for the next chunk.
  Result<Table> Flush() {
    std::vector<ArrayPtr> cols;
    cols.reserve(builders_.size());
    std::vector<std::unique_ptr<columnar::ArrayBuilder>> fresh;
    fresh.reserve(builders_.size());
    for (size_t i = 0; i < builders_.size(); ++i) {
      cols.push_back(builders_[i]->Finish());
      fresh.push_back(columnar::MakeBuilder(types_[i]));
    }
    builders_ = std::move(fresh);
    rows_ = 0;
    return TableFromArrays(names_, std::move(cols));
  }

 private:
  AggSpillWriter() = default;

  void Add(std::string name, TypeId type) {
    names_.push_back(std::move(name));
    types_.push_back(type);
    builders_.push_back(columnar::MakeBuilder(type));
  }

  Status AppendCell(size_t c, const Value& v) {
    if (v.is_null()) {
      builders_[c]->AppendNull();
      return Status::OK();
    }
    return builders_[c]->AppendValue(v);
  }

  std::vector<std::string> names_;
  std::vector<TypeId> types_;
  std::vector<TypeId> arg_types_;
  std::vector<std::unique_ptr<columnar::ArrayBuilder>> builders_;
  int64_t rows_ = 0;
};

/// Decodes the distinct-value set serialized by AggSpillWriter.
Status DecodeDistinctSet(std::string_view cell, AggState* state) {
  BinaryReader reader(reinterpret_cast<const uint8_t*>(cell.data()),
                      cell.size());
  BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr values,
                           columnar::DeserializeArray(&reader));
  for (int64_t i = 0; i < values->length(); ++i) {
    state->distinct.insert(values->GetValue(i));
  }
  return Status::OK();
}

Result<Table> ExecAggregateSpilled(ExecContext* ctx, const PlanNode& plan,
                                   const Table& input, uint64_t span_id) {
  obs::ScopedSpan spill_span(ctx->options.tracer, "spill.aggregate",
                             obs::span_kind::kSpill, span_id);
  int64_t partitions_before = ctx->stats->spill_partitions;

  // Static key/argument types, derived from an empty slice so no data is
  // touched (expression types do not depend on rows).
  BAUPLAN_ASSIGN_OR_RETURN(Table empty_slice,
                           columnar::SliceTable(input, 0, 0));
  std::vector<TypeId> key_types;
  for (const auto& key : plan.group_by) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*key, empty_slice));
    key_types.push_back(arr->type());
  }
  std::vector<TypeId> arg_types;
  for (const auto& agg : plan.aggregates) {
    if (agg.arg == nullptr) {
      arg_types.push_back(TypeId::kInt64);  // COUNT(*): columns stay null
      continue;
    }
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr,
                             EvaluateExpr(*agg.arg, empty_slice));
    arg_types.push_back(arr->type());
  }

  uint32_t fanout =
      SpillFanout(input.EstimatedBytes(), ctx->options.memory_budget_bytes);
  std::vector<AggSpillWriter> writers;
  std::vector<std::vector<std::string>> chunks(fanout);
  writers.reserve(fanout);
  for (uint32_t p = 0; p < fanout; ++p) {
    BAUPLAN_ASSIGN_OR_RETURN(AggSpillWriter w,
                             AggSpillWriter::Make(plan, key_types, arg_types));
    writers.push_back(std::move(w));
  }
  auto flush = [&](uint32_t p) -> Status {
    BAUPLAN_ASSIGN_OR_RETURN(Table chunk, writers[p].Flush());
    BAUPLAN_ASSIGN_OR_RETURN(std::string key,
                             SpillWrite(ctx, "agg-state", chunk));
    chunks[p].push_back(std::move(key));
    return Status::OK();
  };

  // Phase 1: partial aggregation in bounded batches of morsels — the SAME
  // morsel boundaries as the in-memory path (MakeMorsels depends only on
  // row count), so per-morsel float partials are identical. Each batch's
  // group states are routed to their key-hash partition and flushed.
  std::vector<Morsel> morsels =
      MakeMorsels(input.num_rows(), ctx->options.morsel_rows);
  int64_t m = static_cast<int64_t>(morsels.size());
  int64_t batch = std::max<int64_t>(1, 2 * ctx->options.threads);
  for (int64_t batch_begin = 0; batch_begin < m; batch_begin += batch) {
    int64_t n = std::min(batch, m - batch_begin);
    std::vector<MorselGroups> partials(static_cast<size_t>(n));
    std::vector<Status> errors(static_cast<size_t>(n));
    RunMorsels(*ctx, n, [&](int64_t i) {
      const Morsel& mo = morsels[static_cast<size_t>(batch_begin + i)];
      Result<Table> slice =
          columnar::SliceTable(input, mo.begin, mo.end - mo.begin);
      if (!slice.ok()) {
        errors[static_cast<size_t>(i)] = slice.status();
        return;
      }
      errors[static_cast<size_t>(i)] =
          AggregateMorsel(plan, *slice, &partials[static_cast<size_t>(i)]);
    });
    BAUPLAN_RETURN_NOT_OK(FirstError(errors));
    for (int64_t i = 0; i < n; ++i) {
      const MorselGroups& part = partials[static_cast<size_t>(i)];
      if (part.rep_rows.empty()) continue;
      std::vector<uint64_t> hashes;
      for (size_t k = 0; k < part.key_arrays.size(); ++k) {
        columnar::HashArray(*part.key_arrays[k], /*combine=*/k > 0,
                            &hashes);
      }
      for (size_t g = 0; g < part.rep_rows.size(); ++g) {
        int64_t rep = part.rep_rows[g];
        uint32_t p = SpillPartitionOf(
            hashes[static_cast<size_t>(rep)], /*level=*/0, fanout);
        BAUPLAN_RETURN_NOT_OK(writers[p].Append(
            batch_begin + i, static_cast<int64_t>(g), part.key_arrays, rep,
            part.states[g]));
        if (writers[p].rows() >= kAggSpillFlushRows) {
          BAUPLAN_RETURN_NOT_OK(flush(p));
        }
      }
    }
  }
  int64_t written = 0;
  for (uint32_t p = 0; p < fanout; ++p) {
    if (writers[p].rows() > 0) BAUPLAN_RETURN_NOT_OK(flush(p));
    if (!chunks[p].empty()) ++written;
  }
  CountSpillPartitions(*ctx, written);

  // Phase 2: merge each partition. Chunks are read back in write order,
  // so states stream in ascending (morsel, local gid) — the in-memory
  // merge order — and MergeAggState folds them identically.
  struct SpilledGroup {
    int64_t mi;
    int64_t gid;
    std::vector<Value> key;
    std::vector<AggState> states;
  };
  std::vector<SpilledGroup> groups;
  size_t nkeys = key_types.size();
  size_t naggs = plan.aggregates.size();
  for (uint32_t p = 0; p < fanout; ++p) {
    if (chunks[p].empty()) continue;
    std::unordered_map<std::vector<Value>, size_t, KeyHash, KeyEq> index;
    for (const std::string& chunk_key : chunks[p]) {
      BAUPLAN_ASSIGN_OR_RETURN(Table chunk, SpillRead(ctx, chunk_key));
      const auto* mi_col = AsInt64(*chunk.column(0));
      const auto* gid_col = AsInt64(*chunk.column(1));
      for (int64_t r = 0; r < chunk.num_rows(); ++r) {
        std::vector<Value> key;
        key.reserve(nkeys);
        for (size_t k = 0; k < nkeys; ++k) {
          key.push_back(chunk.column(2 + static_cast<int>(k))->GetValue(r));
        }
        std::vector<AggState> states(naggs);
        for (size_t a = 0; a < naggs; ++a) {
          int base = static_cast<int>(2 + nkeys + 7 * a);
          AggState& s = states[a];
          s.count = AsInt64(*chunk.column(base))->Value(r);
          s.sum_int = AsInt64(*chunk.column(base + 1))->Value(r);
          s.sum_double = AsDouble(*chunk.column(base + 2))->Value(r);
          s.saw_double = AsBool(*chunk.column(base + 3))->Value(r);
          s.min = chunk.column(base + 4)->GetValue(r);
          s.max = chunk.column(base + 5)->GetValue(r);
          const ArrayPtr& set_col = chunk.column(base + 6);
          if (!set_col->IsNull(r)) {
            BAUPLAN_RETURN_NOT_OK(
                DecodeDistinctSet(AsString(*set_col)->Value(r), &s));
          }
        }
        auto [it, inserted] = index.emplace(key, groups.size());
        if (inserted) {
          groups.push_back({mi_col->Value(r), gid_col->Value(r),
                            std::move(key), std::move(states)});
        } else {
          std::vector<AggState>& into = groups[it->second].states;
          for (size_t a = 0; a < naggs; ++a) {
            MergeAggState(&into[a], states[a]);
          }
        }
      }
    }
  }

  // First-seen order across ordered morsels == ascending (mi, gid).
  std::sort(groups.begin(), groups.end(),
            [](const SpilledGroup& a, const SpilledGroup& b) {
              return a.mi != b.mi ? a.mi < b.mi : a.gid < b.gid;
            });
  std::vector<std::vector<Value>> group_order;
  std::vector<std::vector<AggState>> group_states;
  group_order.reserve(groups.size());
  group_states.reserve(groups.size());
  for (SpilledGroup& g : groups) {
    group_order.push_back(std::move(g.key));
    group_states.push_back(std::move(g.states));
  }
  FinalizeDistinct(plan, &group_states);
  ctx->stats->groups += static_cast<int64_t>(group_order.size());
  ctx->Count("exec.groups", static_cast<int64_t>(group_order.size()));
  if (ctx->options.tracer != nullptr) {
    ctx->options.tracer->AddAttribute(
        spill_span.id(), "partitions",
        StrCat(ctx->stats->spill_partitions - partitions_before));
    ctx->options.tracer->AddAttribute(spill_span.id(), "groups",
                                      StrCat(group_order.size()));
  }
  return EmitAggregateOutput(plan, group_order, group_states);
}

Result<Table> ExecAggregateVectorized(ExecContext* mctx, const PlanNode& plan,
                                      const Table& input, uint64_t span_id) {
  // Grouped aggregation over a too-large input degrades to the spilled
  // variant. Global aggregates (no GROUP BY) keep O(1) state per morsel
  // and never need to spill.
  if (!plan.group_by.empty() && input.num_rows() > 0 &&
      ShouldSpill(*mctx, input.EstimatedBytes())) {
    return ExecAggregateSpilled(mctx, plan, input, span_id);
  }
  const ExecContext& ctx = *mctx;
  std::vector<Morsel> morsels =
      MakeMorsels(input.num_rows(), ctx.options.morsel_rows);
  int64_t m = static_cast<int64_t>(morsels.size());
  std::vector<MorselGroups> partials(static_cast<size_t>(m));
  std::vector<Status> errors(static_cast<size_t>(m));
  RunMorsels(ctx, m, [&](int64_t mi) {
    const Morsel& mo = morsels[static_cast<size_t>(mi)];
    Result<Table> slice =
        columnar::SliceTable(input, mo.begin, mo.end - mo.begin);
    if (!slice.ok()) {
      errors[static_cast<size_t>(mi)] = slice.status();
      return;
    }
    errors[static_cast<size_t>(mi)] =
        AggregateMorsel(plan, *slice, &partials[static_cast<size_t>(mi)]);
  });
  BAUPLAN_RETURN_NOT_OK(FirstError(errors));

  // Merge partials in morsel order (partitioned across the pool when the
  // group count warrants it). First-seen order across ordered morsels
  // reproduces the scalar engine's first-seen order exactly.
  return MergePartialsAndEmit(mctx, plan, std::move(partials), span_id);
}

/// Row-at-a-time reference aggregation (the seed implementation), kept as
/// the scalar engine for baselining and differential testing.
Result<Table> ExecAggregateScalar(const ExecContext& ctx,
                                  const PlanNode& plan, const Table& input) {
  std::vector<ArrayPtr> key_arrays;
  for (const auto& key : plan.group_by) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*key, input));
    key_arrays.push_back(std::move(arr));
  }
  std::vector<ArrayPtr> arg_arrays(plan.aggregates.size());
  for (size_t i = 0; i < plan.aggregates.size(); ++i) {
    if (plan.aggregates[i].arg != nullptr) {
      BAUPLAN_ASSIGN_OR_RETURN(
          arg_arrays[i], EvaluateExpr(*plan.aggregates[i].arg, input));
    }
  }

  std::unordered_map<std::vector<Value>, std::vector<AggState>, KeyHash,
                     KeyEq>
      groups;
  std::vector<std::vector<Value>> group_order;

  for (int64_t row = 0; row < input.num_rows(); ++row) {
    std::vector<Value> key;
    key.reserve(key_arrays.size());
    for (const auto& arr : key_arrays) key.push_back(arr->GetValue(row));
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key,
                          std::vector<AggState>(plan.aggregates.size()))
               .first;
      group_order.push_back(key);
    }
    std::vector<AggState>& states = it->second;
    for (size_t a = 0; a < plan.aggregates.size(); ++a) {
      const AggregateItem& agg = plan.aggregates[a];
      AggState& state = states[a];
      if (agg.arg == nullptr) {  // COUNT(*)
        ++state.count;
        continue;
      }
      Value v = arg_arrays[a]->GetValue(row);
      if (v.is_null()) continue;  // aggregates skip nulls
      if (agg.distinct && !state.distinct.insert(v).second) continue;
      ++state.count;
      if (agg.function == "SUM" || agg.function == "AVG") {
        if (v.type() == TypeId::kDouble) {
          state.saw_double = true;
          state.sum_double += v.double_value();
        } else {
          BAUPLAN_ASSIGN_OR_RETURN(double d, v.AsDouble());
          state.sum_double += d;
          state.sum_int += v.int64_value();
        }
      }
      if (state.min.is_null() || v.Compare(state.min) < 0) state.min = v;
      if (state.max.is_null() || v.Compare(state.max) > 0) state.max = v;
    }
  }

  if (plan.group_by.empty() && group_order.empty()) {
    group_order.emplace_back();
    groups.emplace(std::vector<Value>(),
                   std::vector<AggState>(plan.aggregates.size()));
  }
  ctx.stats->groups += static_cast<int64_t>(group_order.size());
  ctx.Count("exec.groups", static_cast<int64_t>(group_order.size()));

  std::vector<std::vector<AggState>> group_states;
  group_states.reserve(group_order.size());
  for (const auto& key : group_order) group_states.push_back(groups.at(key));
  return EmitAggregateOutput(plan, group_order, group_states);
}

// ------------------------------------------------------------------- join

/// Applies the residual ON condition after row assembly. For LEFT joins a
/// residual only filters matched rows; rows already null-extended stay.
Result<Table> ApplyJoinResidual(const PlanNode& plan, const Table& joined,
                                const std::vector<int64_t>& out_right) {
  BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr mask,
                           EvaluateExpr(*plan.residual, joined));
  const auto* b = AsBool(*mask);
  if (b == nullptr) {
    return Status::InvalidArgument("join residual must be boolean");
  }
  if (plan.join_type == JoinType::kLeft) {
    std::vector<int64_t> keep;
    for (int64_t i = 0; i < joined.num_rows(); ++i) {
      bool was_unmatched = out_right[static_cast<size_t>(i)] < 0;
      if (was_unmatched || (!b->IsNull(i) && b->Value(i))) {
        keep.push_back(i);
      }
    }
    return columnar::TakeTable(joined, keep);
  }
  return columnar::FilterTable(joined, *b);
}

// Key mixers shared by the flat join tables. The top bits double as the
// hash-partition id, so they must be well mixed (Mix64's multiply spreads
// low-entropy keys across the high bits).
inline uint64_t Mix64(int64_t k) {
  uint64_t h = static_cast<uint64_t>(k) * 0x9E3779B97F4A7C15ULL;
  return h ^ (h >> 32);
}

inline unsigned __int128 Pack128(int64_t hi, int64_t lo) {
  return (static_cast<unsigned __int128>(static_cast<uint64_t>(hi)) << 64) |
         static_cast<uint64_t>(lo);
}

inline uint64_t Mix128(unsigned __int128 k) {
  uint64_t h = static_cast<uint64_t>(k) * 0x9E3779B97F4A7C15ULL;
  h ^= static_cast<uint64_t>(k >> 64) * 0xC2B2AE3D27D4EB4FULL;
  return h ^ (h >> 32);
}

/// One hash partition of the flat open-addressing table over a single
/// int64/timestamp build key — the dominant equi-join shape. Rows with
/// equal keys chain through the JoinBuildState-wide `next` array in
/// ascending global build-row order, so probe emission matches the
/// generic bucket path exactly regardless of the partition count.
struct Int64JoinPart {
  std::vector<int64_t> key;   // bucket -> key stored there
  std::vector<int64_t> head;  // bucket -> first build row, -1 = empty
  uint64_t mask = 0;

  /// `rows` lists this partition's build rows ascending; inserting in
  /// reverse and prepending keeps chains ascending. Writes only this
  /// partition's entries of the shared `next` array (partitions own
  /// disjoint rows, so concurrent builds never touch the same slot).
  void Build(const columnar::Int64Array& keys, const SelectionVector& rows,
             std::vector<int64_t>* next) {
    size_t cap = 16;
    while (cap < rows.size() * 2) cap <<= 1;
    mask = cap - 1;
    key.assign(cap, 0);
    head.assign(cap, -1);
    for (size_t i = rows.size(); i-- > 0;) {
      int64_t r = rows[i];
      int64_t k = keys.Value(r);
      uint64_t b = Mix64(k) & mask;
      while (head[b] != -1 && key[b] != k) b = (b + 1) & mask;
      key[b] = k;
      (*next)[static_cast<size_t>(r)] = head[b];
      head[b] = r;
    }
  }

  /// First build row whose key equals `k` (`hash` = Mix64(k), computed by
  /// the caller for partition routing), or -1; later rows follow `next`.
  int64_t Find(int64_t k, uint64_t hash) const {
    uint64_t b = hash & mask;
    while (head[b] != -1) {
      if (key[b] == k) return head[b];
      b = (b + 1) & mask;
    }
    return -1;
  }
};

/// One hash partition of the flat table over composite (int64, int64)
/// build keys packed into one 128-bit word. Only used when both build key
/// columns are null-free (a null cell has no 128-bit encoding); rows with
/// null probe keys are screened by the caller's null flags, exactly like
/// the single-key path. Chains ascend for the same reverse-insert reason.
struct Int128JoinPart {
  std::vector<unsigned __int128> key;
  std::vector<int64_t> head;  // bucket -> first build row, -1 = empty
  uint64_t mask = 0;

  void Build(const columnar::Int64Array& k0, const columnar::Int64Array& k1,
             const SelectionVector& rows, std::vector<int64_t>* next) {
    size_t cap = 16;
    while (cap < rows.size() * 2) cap <<= 1;
    mask = cap - 1;
    key.assign(cap, 0);
    head.assign(cap, -1);
    for (size_t i = rows.size(); i-- > 0;) {
      int64_t r = rows[i];
      unsigned __int128 k = Pack128(k0.Value(r), k1.Value(r));
      uint64_t b = Mix128(k) & mask;
      while (head[b] != -1 && key[b] != k) b = (b + 1) & mask;
      key[b] = k;
      (*next)[static_cast<size_t>(r)] = head[b];
      head[b] = r;
    }
  }

  int64_t Find(unsigned __int128 k, uint64_t hash) const {
    uint64_t b = hash & mask;
    while (head[b] != -1) {
      if (key[b] == k) return head[b];
      b = (b + 1) & mask;
    }
    return -1;
  }
};

/// One hash partition of the canonical-key fast path for string and
/// mixed-type composite keys. Distinct canonical key byte strings are
/// interned as the map's keys (each stored once no matter how many build
/// rows share it); the mapped value is the chain head, rows chain through
/// the shared `next` array ascending. Byte equality is RowsEqual for the
/// eligible type combinations (see CanonicalKeyTypesCompatible), so probe
/// emission is exactly the bucket fallback's — minus the per-candidate
/// RowsEqual calls.
struct CanonicalJoinPart {
  std::unordered_map<std::string, int64_t> heads;

  /// Consumes this partition's entries of `bytes` (moved into the intern
  /// pool on first sight).
  void Build(std::vector<std::string>* bytes, const SelectionVector& rows,
             std::vector<int64_t>* next) {
    heads.reserve(rows.size());
    for (size_t i = rows.size(); i-- > 0;) {
      int64_t r = rows[i];
      auto [it, inserted] =
          heads.try_emplace(std::move((*bytes)[static_cast<size_t>(r)]), r);
      if (!inserted) {
        (*next)[static_cast<size_t>(r)] = it->second;
        it->second = r;
      }
    }
  }

  int64_t Find(const std::string& k) const {
    auto it = heads.find(k);
    return it == heads.end() ? -1 : it->second;
  }
};

bool Int64Backed(const ArrayPtr& a) {
  return a->type() == TypeId::kInt64 || a->type() == TypeId::kTimestamp;
}

bool Int64BackedType(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kTimestamp;
}

/// Null-key flags: rows with any null key column never join.
std::vector<uint8_t> JoinNullFlags(const std::vector<ArrayPtr>& keys,
                                   int64_t rows) {
  std::vector<uint8_t> flags(static_cast<size_t>(rows), 0);
  for (const ArrayPtr& arr : keys) {
    if (arr->null_count() == 0) continue;
    for (int64_t r = 0; r < rows; ++r) {
      if (arr->IsNull(r)) flags[static_cast<size_t>(r)] = 1;
    }
  }
  return flags;
}

/// The build-side artifact of one hash join, shared by the materialized
/// probe loop and the streaming probe operator so both emit identical
/// pair sequences. Single int64/timestamp keys take the flat table,
/// composite (int64, int64) keys with a null-free build side take the
/// 128-bit packed table, string/mixed composites whose byte encoding is
/// faithful to RowsEqual take the canonical interned-bytes table, and
/// everything else falls back to vectorized row hashes into
/// hash -> row buckets resolved by RowsEqual.
///
/// Every mode is hash-partitioned into 2^part_bits independent tables
/// keyed by the top bits of the mode's key hash, built concurrently on
/// the context's pool. Partitioning is invisible in the output: rows with
/// equal keys always share a partition, chains stay in ascending global
/// build-row order through the shared `next` array, and each probe row
/// consults exactly its key's partition — so the emitted pair sequence is
/// byte-for-byte the single-partition one for any partition count.
struct JoinBuildState {
  enum class Mode { kFlat64, kFlat128, kCanonical, kBuckets };
  Mode mode = Mode::kBuckets;
  Table right;  // materialized build-side payload
  std::vector<ArrayPtr> right_keys;
  std::vector<uint8_t> right_null;
  bool left_join = false;

  int part_bits = 0;          // 2^part_bits hash partitions
  std::vector<int64_t> next;  // build row -> next row with the same key
  std::vector<Int64JoinPart> flat64;
  std::vector<Int128JoinPart> flat128;
  std::vector<CanonicalJoinPart> canonical;
  std::vector<std::unordered_map<uint64_t, std::vector<int64_t>>> buckets;

  size_t PartOf(uint64_t hash) const {
    return part_bits == 0 ? 0 : static_cast<size_t>(hash >> (64 - part_bits));
  }

  /// `left_key_types` decides fast-path eligibility without touching
  /// probe data (streaming pipelines learn them from an empty slice).
  /// Emits exec.breaker.* counters and, when partitioned, one
  /// op.join.partition child span per partition under `span_id`.
  Status Build(ExecContext* ctx, const PlanNode& plan,
               const std::vector<TypeId>& left_key_types, uint64_t span_id) {
    left_join = plan.join_type == JoinType::kLeft;
    int64_t rows = right.num_rows();
    bool types_match =
        left_key_types.size() == right_keys.size() &&
        std::all_of(left_key_types.begin(), left_key_types.end(),
                    Int64BackedType) &&
        std::all_of(right_keys.begin(), right_keys.end(), Int64Backed);
    bool canonical_ok =
        !right_keys.empty() && left_key_types.size() == right_keys.size();
    for (size_t k = 0; canonical_ok && k < right_keys.size(); ++k) {
      canonical_ok = columnar::CanonicalKeyTypesCompatible(
          left_key_types[k], right_keys[k]->type());
    }
    if (types_match && right_keys.size() == 1) {
      mode = Mode::kFlat64;
    } else if (types_match && right_keys.size() == 2 &&
               right_keys[0]->null_count() == 0 &&
               right_keys[1]->null_count() == 0) {
      mode = Mode::kFlat128;
    } else if (canonical_ok) {
      mode = Mode::kCanonical;
    } else {
      mode = Mode::kBuckets;
    }

    // The mode's per-row key hash; the top bits route rows (and later
    // probes) to partitions.
    std::vector<uint64_t> hashes(static_cast<size_t>(rows), 0);
    std::vector<std::string> bytes;
    switch (mode) {
      case Mode::kFlat64: {
        const auto* k0 = AsInt64(*right_keys[0]);
        for (int64_t r = 0; r < rows; ++r) {
          if (!right_null.empty() && right_null[static_cast<size_t>(r)]) {
            continue;  // never inserted; hash stays 0
          }
          hashes[static_cast<size_t>(r)] = Mix64(k0->Value(r));
        }
        break;
      }
      case Mode::kFlat128: {
        const auto* k0 = AsInt64(*right_keys[0]);
        const auto* k1 = AsInt64(*right_keys[1]);
        for (int64_t r = 0; r < rows; ++r) {
          hashes[static_cast<size_t>(r)] =
              Mix128(Pack128(k0->Value(r), k1->Value(r)));
        }
        break;
      }
      case Mode::kCanonical: {
        BAUPLAN_RETURN_NOT_OK(
            columnar::EncodeCanonicalKeys(right_keys, 0, rows, &bytes));
        for (int64_t r = 0; r < rows; ++r) {
          hashes[static_cast<size_t>(r)] =
              Fnv1a64(bytes[static_cast<size_t>(r)]);
        }
        break;
      }
      case Mode::kBuckets: {
        if (!right_keys.empty()) {
          for (size_t k = 0; k < right_keys.size(); ++k) {
            columnar::HashArray(*right_keys[k], /*combine=*/k > 0, &hashes);
          }
        }
        break;
      }
    }

    // Partition only when a pool can actually build concurrently and the
    // build side is big enough to amortize the routing pass. The output
    // never depends on the partition count (see struct comment), so this
    // heuristic is free to vary with threads.
    part_bits = 0;
    if (ctx->pool != nullptr && ctx->options.threads > 1 && rows >= 4096) {
      int target = std::min(ctx->options.threads, 64);
      while ((1 << part_bits) < target) ++part_bits;
    }
    size_t nparts = size_t{1} << part_bits;

    // Route build rows: ascending per-partition row lists.
    std::vector<SelectionVector> prows(nparts);
    for (int64_t r = 0; r < rows; ++r) {
      if (!right_null.empty() && right_null[static_cast<size_t>(r)]) {
        continue;
      }
      prows[PartOf(hashes[static_cast<size_t>(r)])].push_back(r);
    }
    next.assign(static_cast<size_t>(rows), -1);
    switch (mode) {
      case Mode::kFlat64:
        flat64.resize(nparts);
        break;
      case Mode::kFlat128:
        flat128.resize(nparts);
        break;
      case Mode::kCanonical:
        canonical.resize(nparts);
        break;
      case Mode::kBuckets:
        buckets.resize(nparts);
        break;
    }
    auto build_one = [&](int64_t p) {
      const SelectionVector& mine = prows[static_cast<size_t>(p)];
      switch (mode) {
        case Mode::kFlat64:
          flat64[static_cast<size_t>(p)].Build(*AsInt64(*right_keys[0]),
                                               mine, &next);
          return;
        case Mode::kFlat128:
          flat128[static_cast<size_t>(p)].Build(
              *AsInt64(*right_keys[0]), *AsInt64(*right_keys[1]), mine,
              &next);
          return;
        case Mode::kCanonical:
          canonical[static_cast<size_t>(p)].Build(&bytes, mine, &next);
          return;
        case Mode::kBuckets: {
          auto& map = buckets[static_cast<size_t>(p)];
          map.reserve(mine.size());
          for (int64_t r : mine) {
            map[hashes[static_cast<size_t>(r)]].push_back(r);
          }
          return;
        }
      }
    };
    if (ctx->pool != nullptr && nparts > 1) {
      ctx->pool->ParallelFor(static_cast<int64_t>(nparts), build_one);
    } else {
      for (size_t p = 0; p < nparts; ++p) {
        build_one(static_cast<int64_t>(p));
      }
    }

    switch (mode) {
      case Mode::kFlat64:
        ++ctx->stats->join_build_flat64;
        ctx->Count("exec.breaker.join_build_flat64", 1);
        break;
      case Mode::kFlat128:
        ++ctx->stats->join_build_flat128;
        ctx->Count("exec.breaker.join_build_flat128", 1);
        break;
      case Mode::kCanonical:
        ++ctx->stats->join_build_canonical;
        ctx->Count("exec.breaker.join_build_canonical", 1);
        break;
      case Mode::kBuckets:
        ++ctx->stats->join_build_buckets;
        ctx->Count("exec.breaker.join_build_buckets", 1);
        break;
    }
    if (nparts > 1) {
      ctx->stats->breaker_partitions += static_cast<int64_t>(nparts);
      ctx->Count("exec.breaker.join_partitions",
                 static_cast<int64_t>(nparts));
      if (ctx->options.tracer != nullptr) {
        // Driver-side bookkeeping spans: one per partition, recording how
        // many build rows it absorbed (skew shows up here).
        for (size_t p = 0; p < nparts; ++p) {
          uint64_t s = ctx->options.tracer->StartSpan(
              "op.join.partition", obs::span_kind::kOperator, span_id);
          ctx->options.tracer->AddAttribute(s, "partition", StrCat(p));
          ctx->options.tracer->AddAttribute(s, "build_rows",
                                            StrCat(prows[p].size()));
          ctx->options.tracer->EndSpan(s);
        }
      }
    }
    return Status::OK();
  }
};

/// Probes rows [begin, end) of the evaluated `left_keys` against the
/// build state, appending matched (probe_row, build_row) pairs —
/// `left_hashes` is consulted in bucket mode only. Probe rows ascend and
/// build chains ascend in every mode, so the emitted pair order is the
/// same regardless of which fast path fired.
void ProbeJoinRows(const JoinBuildState& st,
                   const std::vector<ArrayPtr>& left_keys,
                   const std::vector<uint64_t>& left_hashes,
                   const std::vector<uint8_t>& left_null, int64_t begin,
                   int64_t end, SelectionVector* out_l,
                   SelectionVector* out_r) {
  auto emit_chain = [&](int64_t row, int64_t r) {
    if (r >= 0) {
      for (; r != -1; r = st.next[static_cast<size_t>(r)]) {
        out_l->push_back(row);
        out_r->push_back(r);
      }
    } else if (st.left_join) {
      out_l->push_back(row);
      out_r->push_back(-1);
    }
  };
  switch (st.mode) {
    case JoinBuildState::Mode::kFlat64: {
      const auto* probe_keys = AsInt64(*left_keys[0]);
      for (int64_t row = begin; row < end; ++row) {
        int64_t r = -1;
        if (!left_null[static_cast<size_t>(row)]) {
          int64_t k = probe_keys->Value(row);
          uint64_t h = Mix64(k);
          r = st.flat64[st.PartOf(h)].Find(k, h);
        }
        emit_chain(row, r);
      }
      return;
    }
    case JoinBuildState::Mode::kFlat128: {
      const auto* k0 = AsInt64(*left_keys[0]);
      const auto* k1 = AsInt64(*left_keys[1]);
      for (int64_t row = begin; row < end; ++row) {
        int64_t r = -1;
        if (!left_null[static_cast<size_t>(row)]) {
          unsigned __int128 k = Pack128(k0->Value(row), k1->Value(row));
          uint64_t h = Mix128(k);
          r = st.flat128[st.PartOf(h)].Find(k, h);
        }
        emit_chain(row, r);
      }
      return;
    }
    case JoinBuildState::Mode::kCanonical: {
      // Encode this morsel's probe keys once; the range is caller-checked
      // so the encode cannot fail.
      std::vector<std::string> bytes;
      Status encoded =
          columnar::EncodeCanonicalKeys(left_keys, begin, end, &bytes);
      (void)encoded;
      for (int64_t row = begin; row < end; ++row) {
        int64_t r = -1;
        if (!left_null[static_cast<size_t>(row)]) {
          const std::string& k = bytes[static_cast<size_t>(row - begin)];
          r = st.canonical[st.PartOf(Fnv1a64(k))].Find(k);
        }
        emit_chain(row, r);
      }
      return;
    }
    case JoinBuildState::Mode::kBuckets: {
      for (int64_t row = begin; row < end; ++row) {
        const std::vector<int64_t>* matches = nullptr;
        if (!left_null[static_cast<size_t>(row)]) {
          uint64_t h = left_hashes[static_cast<size_t>(row)];
          const auto& map = st.buckets[st.PartOf(h)];
          auto it = map.find(h);
          if (it != map.end()) matches = &it->second;
        }
        bool matched = false;
        if (matches != nullptr) {
          for (int64_t r : *matches) {
            if (columnar::RowsEqual(left_keys, row, st.right_keys, r)) {
              out_l->push_back(row);
              out_r->push_back(r);
              matched = true;
            }
          }
        }
        if (!matched && st.left_join) {
          out_l->push_back(row);
          out_r->push_back(-1);
        }
      }
      return;
    }
  }
}

/// Materializes the join output from matched (left,right) row pairs:
/// chunked parallel gather of all columns plus the residual filter.
/// Shared by the in-memory and Grace paths, so once their pair sequences
/// agree the output bytes cannot diverge.
Result<Table> AssembleJoinOutput(const ExecContext& ctx, const PlanNode& plan,
                                 const Table& left, const Table& right,
                                 const SelectionVector& out_left,
                                 const SelectionVector& out_right) {
  // Gather the output rows in morsel-sized chunks: every chunk takes all
  // columns, chunks run in parallel, and ConcatTables stitches them back
  // in chunk order. Row-chunking parallelizes the string-heavy copies
  // that per-column gathering cannot split. MakeMorsels yields one empty
  // morsel for zero pairs, so ConcatTables never sees an empty list.
  int left_cols = left.num_columns();
  int total_cols = left_cols + right.num_columns();
  std::vector<Morsel> chunks = MakeMorsels(
      static_cast<int64_t>(out_left.size()), ctx.options.morsel_rows);
  int64_t nchunks = static_cast<int64_t>(chunks.size());
  std::vector<Table> parts(static_cast<size_t>(nchunks));
  std::vector<Status> errors(static_cast<size_t>(nchunks));
  RunMorsels(ctx, nchunks, [&](int64_t ci) {
    const Morsel& ch = chunks[static_cast<size_t>(ci)];
    SelectionVector sel_l(out_left.begin() + ch.begin,
                          out_left.begin() + ch.end);
    SelectionVector sel_r(out_right.begin() + ch.begin,
                          out_right.begin() + ch.end);
    std::vector<ArrayPtr> cols(static_cast<size_t>(total_cols));
    for (int c = 0; c < total_cols; ++c) {
      Result<ArrayPtr> col =
          c < left_cols
              ? columnar::Take(left.column(c), sel_l)
              : columnar::TakeAllowNull(right.column(c - left_cols), sel_r);
      if (!col.ok()) {
        errors[static_cast<size_t>(ci)] = col.status();
        return;
      }
      cols[static_cast<size_t>(c)] = std::move(*col);
    }
    Result<Table> part = Table::Make(plan.schema, std::move(cols));
    if (!part.ok()) {
      errors[static_cast<size_t>(ci)] = part.status();
      return;
    }
    parts[static_cast<size_t>(ci)] = std::move(*part);
  });
  BAUPLAN_RETURN_NOT_OK(FirstError(errors));
  BAUPLAN_ASSIGN_OR_RETURN(Table joined, columnar::ConcatTables(parts));
  if (plan.residual != nullptr) {
    return ApplyJoinResidual(plan, joined, out_right);
  }
  return joined;
}

// Grace join. Both sides shrink to "side tables" of key columns plus the
// global row index; partitions of those spill to the object store and
// join pairwise, emitting global (left,right) index pairs. Payload
// columns are never spilled — the executor materializes operator inputs
// regardless, so the budget governs the join's own working set (hash
// table + partition buffers), and the final gather runs through the
// shared AssembleJoinOutput. Pair order: the in-memory path emits pairs
// exactly sorted by (left_row, right_row) — probe rows ascend, build
// chains ascend, and an unmatched LEFT row contributes a single
// (left_row, -1) — so sorting the partition-scattered pairs restores
// bit-identity.

/// Key columns + global row ids of one side's non-null-key rows.
Result<Table> MakeJoinSideTable(const std::vector<ArrayPtr>& keys,
                                const std::vector<uint8_t>& null_flag,
                                int64_t rows) {
  SelectionVector keep;
  keep.reserve(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    if (null_flag.empty() || !null_flag[static_cast<size_t>(r)]) {
      keep.push_back(r);
    }
  }
  std::vector<std::string> names;
  std::vector<ArrayPtr> cols;
  for (size_t k = 0; k < keys.size(); ++k) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, columnar::Take(keys[k], keep));
    names.push_back(StrCat("__key", k));
    cols.push_back(std::move(col));
  }
  names.push_back("__row");
  cols.push_back(std::make_shared<columnar::Int64Array>(
      std::vector<int64_t>(keep.begin(), keep.end()),
      std::vector<uint8_t>{}, 0));
  return TableFromArrays(names, std::move(cols));
}

/// Hash-partitions one side table into up to `fanout` spilled objects
/// with the level-salted partition function. Returns one key per
/// partition; "" marks an empty partition (nothing written).
Result<std::vector<std::string>> SpillJoinPartitions(ExecContext* ctx,
                                                     const Table& side,
                                                     int level,
                                                     uint32_t fanout,
                                                     const char* tag) {
  int nkeys = side.num_columns() - 1;
  std::vector<uint64_t> hashes;
  for (int k = 0; k < nkeys; ++k) {
    columnar::HashArray(*side.column(k), /*combine=*/k > 0, &hashes);
  }
  std::vector<SelectionVector> parts(fanout);
  for (int64_t r = 0; r < side.num_rows(); ++r) {
    parts[SpillPartitionOf(hashes[static_cast<size_t>(r)], level, fanout)]
        .push_back(r);
  }
  std::vector<std::string> keys(fanout);
  int64_t written = 0;
  for (uint32_t p = 0; p < fanout; ++p) {
    if (parts[p].empty()) continue;
    BAUPLAN_ASSIGN_OR_RETURN(Table part, columnar::TakeTable(side, parts[p]));
    BAUPLAN_ASSIGN_OR_RETURN(keys[p], SpillWrite(ctx, tag, part));
    ++written;
  }
  CountSpillPartitions(*ctx, written);
  return keys;
}

/// Joins one resident (build, probe) partition pair with the generic
/// hash-bucket algorithm, emitting global row pairs. Probe rows ascend
/// and bucket chains ascend, matching the in-memory emission order
/// within the partition.
Status JoinSpillPartition(const Table& build, const Table& probe,
                          bool left_join,
                          std::vector<std::pair<int64_t, int64_t>>* pairs) {
  int nkeys = build.num_columns() - 1;
  std::vector<ArrayPtr> bkeys, pkeys;
  for (int k = 0; k < nkeys; ++k) {
    bkeys.push_back(build.column(k));
    pkeys.push_back(probe.column(k));
  }
  const auto* brow = AsInt64(*build.column(nkeys));
  const auto* prow = AsInt64(*probe.column(nkeys));
  std::vector<uint64_t> bh, ph;
  for (int k = 0; k < nkeys; ++k) {
    columnar::HashArray(*bkeys[k], /*combine=*/k > 0, &bh);
    columnar::HashArray(*pkeys[k], /*combine=*/k > 0, &ph);
  }
  std::unordered_map<uint64_t, std::vector<int64_t>> buckets;
  buckets.reserve(static_cast<size_t>(build.num_rows()));
  for (int64_t r = 0; r < build.num_rows(); ++r) {
    buckets[bh[static_cast<size_t>(r)]].push_back(r);
  }
  for (int64_t r = 0; r < probe.num_rows(); ++r) {
    bool matched = false;
    auto it = buckets.find(ph[static_cast<size_t>(r)]);
    if (it != buckets.end()) {
      for (int64_t cand : it->second) {
        if (columnar::RowsEqual(pkeys, r, bkeys, cand)) {
          pairs->push_back({prow->Value(r), brow->Value(cand)});
          matched = true;
        }
      }
    }
    if (!matched && left_join) pairs->push_back({prow->Value(r), -1});
  }
  return Status::OK();
}

Result<Table> ExecJoinGrace(ExecContext* ctx, const PlanNode& plan,
                            const Table& left, const Table& right,
                            const std::vector<ArrayPtr>& left_keys,
                            const std::vector<ArrayPtr>& right_keys,
                            const std::vector<uint8_t>& left_null,
                            const std::vector<uint8_t>& right_null,
                            uint64_t span_id) {
  obs::ScopedSpan spill_span(ctx->options.tracer, "spill.join",
                             obs::span_kind::kSpill, span_id);
  int64_t partitions_before = ctx->stats->spill_partitions;
  bool left_join = plan.join_type == JoinType::kLeft;

  std::vector<std::pair<int64_t, int64_t>> pairs;
  if (left_join && !left_null.empty()) {
    for (int64_t r = 0; r < left.num_rows(); ++r) {
      if (left_null[static_cast<size_t>(r)]) pairs.push_back({r, -1});
    }
  }
  BAUPLAN_ASSIGN_OR_RETURN(
      Table build, MakeJoinSideTable(right_keys, right_null,
                                     right.num_rows()));
  BAUPLAN_ASSIGN_OR_RETURN(
      Table probe, MakeJoinSideTable(left_keys, left_null, left.num_rows()));

  // Level 0 always partitions (the operator was chosen because its input
  // busts the budget); deeper levels re-partition only while the build
  // partition still exceeds it, up to kMaxSpillDepth for skewed keys.
  std::function<Status(Table, Table, int)> join_rec =
      [&](Table b, Table p, int level) -> Status {
    if (level > 0 && (level >= kMaxSpillDepth ||
                      !ShouldSpill(*ctx, b.EstimatedBytes()))) {
      return JoinSpillPartition(b, p, left_join, &pairs);
    }
    uint32_t fanout =
        SpillFanout(b.EstimatedBytes(), ctx->options.memory_budget_bytes);
    BAUPLAN_ASSIGN_OR_RETURN(
        std::vector<std::string> bkeys,
        SpillJoinPartitions(ctx, b, level, fanout, "join-build"));
    BAUPLAN_ASSIGN_OR_RETURN(
        std::vector<std::string> pkeys,
        SpillJoinPartitions(ctx, p, level, fanout, "join-probe"));
    b = Table();  // parent partitions are on disk now; free the RAM
    p = Table();
    for (uint32_t part = 0; part < fanout; ++part) {
      if (pkeys[part].empty()) {
        // No probe rows: nothing to emit; drop any orphan build partition.
        if (!bkeys[part].empty()) {
          BAUPLAN_RETURN_NOT_OK(ctx->spill->Delete(bkeys[part]));
        }
        continue;
      }
      BAUPLAN_ASSIGN_OR_RETURN(Table pp, SpillRead(ctx, pkeys[part]));
      if (bkeys[part].empty()) {
        // No build rows: every probe row here is unmatched.
        if (left_join) {
          const auto* prow = AsInt64(*pp.column(pp.num_columns() - 1));
          for (int64_t r = 0; r < pp.num_rows(); ++r) {
            pairs.push_back({prow->Value(r), -1});
          }
        }
        continue;
      }
      BAUPLAN_ASSIGN_OR_RETURN(Table bp, SpillRead(ctx, bkeys[part]));
      BAUPLAN_RETURN_NOT_OK(
          join_rec(std::move(bp), std::move(pp), level + 1));
    }
    return Status::OK();
  };
  BAUPLAN_RETURN_NOT_OK(join_rec(std::move(build), std::move(probe), 0));

  // Scattered partitions emitted pairs out of global order; the total
  // (left_row, right_row) sort restores the in-memory sequence (-1 < any
  // right row, and a left row never mixes matches with -1).
  std::sort(pairs.begin(), pairs.end());
  SelectionVector out_left, out_right;
  out_left.reserve(pairs.size());
  out_right.reserve(pairs.size());
  for (const auto& [l, r] : pairs) {
    out_left.push_back(l);
    out_right.push_back(r);
  }
  if (ctx->options.tracer != nullptr) {
    ctx->options.tracer->AddAttribute(
        spill_span.id(), "partitions",
        StrCat(ctx->stats->spill_partitions - partitions_before));
    ctx->options.tracer->AddAttribute(spill_span.id(), "pairs",
                                      StrCat(pairs.size()));
  }
  return AssembleJoinOutput(*ctx, plan, left, right, out_left, out_right);
}

Result<Table> ExecJoinVectorized(ExecContext* mctx, const PlanNode& plan,
                                 const Table& left, const Table& right,
                                 uint64_t span_id) {
  const ExecContext& ctx = *mctx;
  std::vector<ArrayPtr> left_keys, right_keys;
  for (const auto& k : plan.left_keys) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*k, left));
    left_keys.push_back(std::move(arr));
  }
  for (const auto& k : plan.right_keys) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*k, right));
    right_keys.push_back(std::move(arr));
  }

  std::vector<uint8_t> right_null = JoinNullFlags(right_keys,
                                                  right.num_rows());
  std::vector<uint8_t> left_null = JoinNullFlags(left_keys,
                                                 left.num_rows());

  // Either side over budget degrades to the Grace join: the build hash
  // table scales with the right side, but the probe side table and the
  // pair buffers scale with the left, so both inputs bound the join's
  // working set.
  ctx.stats->join_probe_rows += left.num_rows();
  ctx.Count("exec.join_probe_rows", left.num_rows());
  if (!left_keys.empty() && (ShouldSpill(ctx, right.EstimatedBytes()) ||
                             ShouldSpill(ctx, left.EstimatedBytes()))) {
    return ExecJoinGrace(mctx, plan, left, right, left_keys, right_keys,
                         left_null, right_null, span_id);
  }

  // Build side (right), shared with the streaming probe operator.
  JoinBuildState state;
  state.right = right;
  state.right_keys = right_keys;
  state.right_null = right_null;
  std::vector<TypeId> left_key_types;
  left_key_types.reserve(left_keys.size());
  for (const ArrayPtr& arr : left_keys) left_key_types.push_back(arr->type());
  BAUPLAN_RETURN_NOT_OK(state.Build(mctx, plan, left_key_types, span_id));
  std::vector<uint64_t> left_hashes;
  if (state.mode == JoinBuildState::Mode::kBuckets) {
    for (size_t k = 0; k < left_keys.size(); ++k) {
      columnar::HashArray(*left_keys[k], /*combine=*/k > 0, &left_hashes);
    }
  }

  // Probe side (left) in parallel morsels; pairs merge in morsel order.
  std::vector<Morsel> morsels =
      MakeMorsels(left.num_rows(), ctx.options.morsel_rows);
  int64_t m = static_cast<int64_t>(morsels.size());
  std::vector<std::pair<SelectionVector, SelectionVector>> pairs(
      static_cast<size_t>(m));
  RunMorsels(ctx, m, [&](int64_t mi) {
    const Morsel& mo = morsels[static_cast<size_t>(mi)];
    ProbeJoinRows(state, left_keys, left_hashes, left_null, mo.begin,
                  mo.end, &pairs[static_cast<size_t>(mi)].first,
                  &pairs[static_cast<size_t>(mi)].second);
  });

  size_t total = 0;
  for (const auto& p : pairs) total += p.first.size();
  SelectionVector out_left, out_right;
  out_left.reserve(total);
  out_right.reserve(total);
  for (const auto& p : pairs) {
    out_left.insert(out_left.end(), p.first.begin(), p.first.end());
    out_right.insert(out_right.end(), p.second.begin(), p.second.end());
  }
  return AssembleJoinOutput(ctx, plan, left, right, out_left, out_right);
}

/// Row-at-a-time reference join (the seed implementation).
Result<Table> ExecJoinScalar(const ExecContext& ctx, const PlanNode& plan,
                             const Table& left, const Table& right) {
  std::vector<ArrayPtr> left_keys, right_keys;
  for (const auto& k : plan.left_keys) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*k, left));
    left_keys.push_back(std::move(arr));
  }
  for (const auto& k : plan.right_keys) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*k, right));
    right_keys.push_back(std::move(arr));
  }

  std::unordered_map<std::vector<Value>, std::vector<int64_t>, KeyHash,
                     KeyEq>
      hash_table;
  for (int64_t row = 0; row < right.num_rows(); ++row) {
    std::vector<Value> key;
    bool has_null = false;
    for (const auto& arr : right_keys) {
      Value v = arr->GetValue(row);
      if (v.is_null()) has_null = true;
      key.push_back(std::move(v));
    }
    if (has_null) continue;  // null keys never join
    hash_table[std::move(key)].push_back(row);
  }

  ctx.stats->join_probe_rows += left.num_rows();
  ctx.Count("exec.join_probe_rows", left.num_rows());
  std::vector<int64_t> out_left, out_right;
  for (int64_t row = 0; row < left.num_rows(); ++row) {
    std::vector<Value> key;
    bool has_null = false;
    for (const auto& arr : left_keys) {
      Value v = arr->GetValue(row);
      if (v.is_null()) has_null = true;
      key.push_back(std::move(v));
    }
    const std::vector<int64_t>* matches = nullptr;
    if (!has_null) {
      auto it = hash_table.find(key);
      if (it != hash_table.end()) matches = &it->second;
    }
    if (matches != nullptr) {
      for (int64_t r : *matches) {
        out_left.push_back(row);
        out_right.push_back(r);
      }
    } else if (plan.join_type == JoinType::kLeft) {
      out_left.push_back(row);
      out_right.push_back(-1);
    }
  }

  std::vector<ArrayPtr> columns;
  BAUPLAN_ASSIGN_OR_RETURN(Table left_rows,
                           columnar::TakeTable(left, out_left));
  for (int c = 0; c < left_rows.num_columns(); ++c) {
    columns.push_back(left_rows.column(c));
  }
  for (int c = 0; c < right.num_columns(); ++c) {
    auto builder = columnar::MakeBuilder(right.schema().field(c).type);
    const ArrayPtr& src = right.column(c);
    for (int64_t r : out_right) {
      if (r < 0 || src->IsNull(r)) {
        builder->AppendNull();
      } else {
        BAUPLAN_RETURN_NOT_OK(builder->AppendValue(src->GetValue(r)));
      }
    }
    columns.push_back(builder->Finish());
  }
  BAUPLAN_ASSIGN_OR_RETURN(Table joined,
                           Table::Make(plan.schema, std::move(columns)));
  if (plan.residual != nullptr) {
    return ApplyJoinResidual(plan, joined, out_right);
  }
  return joined;
}

// -------------------------------------------------------------------- sort

/// Three-way compare of one sort cell across two arrays, replicating
/// SortIndices' per-column order exactly: nulls first (the ascending
/// flag then flips them to last on descending keys), NaN after every
/// non-NaN double and equal to itself.
int CompareSortCells(const Array& a, int64_t x, const Array& b, int64_t y) {
  bool xn = a.IsNull(x), yn = b.IsNull(y);
  if (xn || yn) return xn == yn ? 0 : (xn ? -1 : 1);
  switch (a.type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      int64_t va = AsInt64(a)->Value(x), vb = AsInt64(b)->Value(y);
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case TypeId::kDouble: {
      double va = AsDouble(a)->Value(x), vb = AsDouble(b)->Value(y);
      bool na = std::isnan(va), nb = std::isnan(vb);
      if (na || nb) return na == nb ? 0 : (na ? 1 : -1);
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case TypeId::kBool: {
      int va = AsBool(a)->Value(x) ? 1 : 0, vb = AsBool(b)->Value(y) ? 1 : 0;
      return va - vb;
    }
    case TypeId::kString: {
      int c = AsString(a)->Value(x).compare(AsString(b)->Value(y));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

/// External merge sort. Runs are contiguous input slices sorted with
/// SortIndices itself, spilled in blocks (payload plus the evaluated key
/// columns), then k-way merged with the same per-column comparator and
/// the run index as tie-break. Bit-identity: runs are ascending slices,
/// so within-run order already matches SortIndices' global-index
/// tie-break and equal keys across runs resolve to the lower run — the
/// global-index order again. A `limit` >= 0 truncates each run to its
/// top-N (any global top-N row is in its run's top-N) and stops the
/// merge at N rows.
Result<Table> ExecSortExternal(ExecContext* ctx, const Table& input,
                               const std::vector<columnar::SortKeySpec>& keys,
                               int64_t limit, uint64_t span_id) {
  obs::ScopedSpan spill_span(ctx->options.tracer, "spill.sort",
                             obs::span_kind::kSpill, span_id);
  int64_t rows = input.num_rows();
  int64_t budget = ctx->options.memory_budget_bytes;
  int64_t row_bytes = std::max<int64_t>(
      1, input.EstimatedBytes() / std::max<int64_t>(1, rows));
  int64_t run_rows = std::clamp<int64_t>((budget / 2) / row_bytes, 1, rows);
  int64_t nruns = (rows + run_rows - 1) / run_rows;
  // During the merge one block per run is resident; size blocks so that
  // working set also fits half the budget.
  int64_t block_rows = std::max<int64_t>(
      1, (budget / 2) / std::max<int64_t>(1, row_bytes * nruns));
  size_t nkeys = keys.size();

  std::vector<std::vector<std::string>> run_blocks(
      static_cast<size_t>(nruns));
  for (int64_t run = 0; run < nruns; ++run) {
    int64_t begin = run * run_rows;
    int64_t len = std::min(run_rows, rows - begin);
    std::vector<columnar::SortKeySpec> run_keys;
    run_keys.reserve(nkeys);
    for (const auto& k : keys) {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr sliced,
                               columnar::SliceArray(k.array, begin, len));
      run_keys.push_back({std::move(sliced), k.ascending});
    }
    BAUPLAN_ASSIGN_OR_RETURN(SelectionVector order,
                             columnar::SortIndices(run_keys, limit));
    for (int64_t& idx : order) idx += begin;
    BAUPLAN_ASSIGN_OR_RETURN(Table sorted, columnar::TakeTable(input, order));
    std::vector<std::string> names;
    std::vector<ArrayPtr> cols;
    for (int c = 0; c < sorted.num_columns(); ++c) {
      names.push_back(input.schema().field(c).name);
      cols.push_back(sorted.column(c));
    }
    for (size_t k = 0; k < nkeys; ++k) {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr kc,
                               columnar::Take(keys[k].array, order));
      names.push_back(StrCat("__spill_key_", k));
      cols.push_back(std::move(kc));
    }
    BAUPLAN_ASSIGN_OR_RETURN(Table run_table,
                             TableFromArrays(names, std::move(cols)));
    for (int64_t off = 0; off < run_table.num_rows(); off += block_rows) {
      int64_t blen = std::min(block_rows, run_table.num_rows() - off);
      BAUPLAN_ASSIGN_OR_RETURN(Table block,
                               columnar::SliceTable(run_table, off, blen));
      BAUPLAN_ASSIGN_OR_RETURN(std::string key,
                               SpillWrite(ctx, "sort-run", block));
      run_blocks[static_cast<size_t>(run)].push_back(std::move(key));
    }
  }
  CountSpillPartitions(*ctx, nruns);

  struct Cursor {
    size_t next_block = 0;
    Table block;
    int64_t pos = 0;
    std::vector<ArrayPtr> keycols;
    bool done = false;
  };
  std::vector<Cursor> cursors(static_cast<size_t>(nruns));
  auto load_next = [&](int64_t run) -> Status {
    Cursor& cur = cursors[static_cast<size_t>(run)];
    const auto& blocks = run_blocks[static_cast<size_t>(run)];
    while (cur.next_block < blocks.size()) {
      BAUPLAN_ASSIGN_OR_RETURN(Table t,
                               SpillRead(ctx, blocks[cur.next_block++]));
      if (t.num_rows() == 0) continue;
      cur.keycols.clear();
      int base = t.num_columns() - static_cast<int>(nkeys);
      for (size_t k = 0; k < nkeys; ++k) {
        cur.keycols.push_back(t.column(base + static_cast<int>(k)));
      }
      cur.block = std::move(t);
      cur.pos = 0;
      return Status::OK();
    }
    cur.done = true;
    cur.block = Table();
    cur.keycols.clear();
    return Status::OK();
  };
  for (int64_t run = 0; run < nruns; ++run) {
    BAUPLAN_RETURN_NOT_OK(load_next(run));
  }

  // Min-heap of run indices; a run's cursor only advances while it is
  // out of the heap, so comparisons always see stable rows.
  auto heap_after = [&](int64_t x, int64_t y) {
    const Cursor& cx = cursors[static_cast<size_t>(x)];
    const Cursor& cy = cursors[static_cast<size_t>(y)];
    for (size_t k = 0; k < nkeys; ++k) {
      int c = CompareSortCells(*cx.keycols[k], cx.pos, *cy.keycols[k],
                               cy.pos);
      if (c != 0) return keys[k].ascending ? c > 0 : c < 0;
    }
    return x > y;  // equal keys: the earlier run holds earlier input rows
  };
  std::priority_queue<int64_t, std::vector<int64_t>, decltype(heap_after)>
      heap(heap_after);
  for (int64_t run = 0; run < nruns; ++run) {
    if (!cursors[static_cast<size_t>(run)].done) heap.push(run);
  }

  std::vector<std::unique_ptr<columnar::ArrayBuilder>> builders;
  for (int c = 0; c < input.num_columns(); ++c) {
    builders.push_back(columnar::MakeBuilder(input.schema().field(c).type));
  }
  int64_t target = limit >= 0 ? std::min(limit, rows) : rows;
  int64_t emitted = 0;
  while (emitted < target && !heap.empty()) {
    int64_t run = heap.top();
    heap.pop();
    Cursor& cur = cursors[static_cast<size_t>(run)];
    for (int c = 0; c < input.num_columns(); ++c) {
      Value v = cur.block.column(c)->GetValue(cur.pos);
      if (v.is_null()) {
        builders[static_cast<size_t>(c)]->AppendNull();
      } else {
        BAUPLAN_RETURN_NOT_OK(
            builders[static_cast<size_t>(c)]->AppendValue(v));
      }
    }
    ++emitted;
    if (++cur.pos >= cur.block.num_rows()) {
      BAUPLAN_RETURN_NOT_OK(load_next(run));
    }
    if (!cur.done) heap.push(run);
  }
  // A top-N merge stops early; sweep unread blocks so the spill store
  // comes out empty either way.
  for (int64_t run = 0; run < nruns; ++run) {
    const Cursor& cur = cursors[static_cast<size_t>(run)];
    const auto& blocks = run_blocks[static_cast<size_t>(run)];
    for (size_t b = cur.next_block; b < blocks.size(); ++b) {
      BAUPLAN_RETURN_NOT_OK(ctx->spill->Delete(blocks[b]));
    }
  }
  if (ctx->options.tracer != nullptr) {
    ctx->options.tracer->AddAttribute(spill_span.id(), "runs",
                                      StrCat(nruns));
    ctx->options.tracer->AddAttribute(spill_span.id(), "rows_out",
                                      StrCat(emitted));
  }
  std::vector<ArrayPtr> columns;
  columns.reserve(builders.size());
  for (auto& b : builders) columns.push_back(b->Finish());
  return Table::Make(input.schema(), std::move(columns));
}

/// Typed sort via SortIndices; `limit` >= 0 produces only the top-N
/// prefix of the full stable order (LIMIT pushed into ORDER BY). Inputs
/// over the memory budget take the external-sort path instead.
Result<Table> ExecSortVectorized(ExecContext* ctx, const PlanNode& plan,
                                 const Table& input, int64_t limit,
                                 uint64_t span_id) {
  std::vector<columnar::SortKeySpec> keys;
  keys.reserve(plan.sort_keys.size());
  for (const auto& key : plan.sort_keys) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*key.expr, input));
    keys.push_back({std::move(arr), key.ascending});
  }
  if (keys.empty()) return input;
  if (ShouldSpill(*ctx, input.EstimatedBytes())) {
    return ExecSortExternal(ctx, input, keys, limit, span_id);
  }
  // Parallel path: sort one run per morsel concurrently, then k-way merge.
  // The run decomposition comes from MakeMorsels, so it depends only on
  // the row count — and MergeSortedRuns reproduces SortIndices' total
  // order (keys, then global index) exactly, so the result bytes never
  // depend on the thread or run count.
  std::vector<Morsel> runs_morsels =
      MakeMorsels(input.num_rows(), ctx->options.morsel_rows);
  if (ctx->pool != nullptr && ctx->options.threads > 1 &&
      runs_morsels.size() > 1) {
    int64_t nruns = static_cast<int64_t>(runs_morsels.size());
    std::vector<SelectionVector> runs(static_cast<size_t>(nruns));
    std::vector<Status> errors(static_cast<size_t>(nruns));
    ctx->pool->ParallelFor(nruns, [&](int64_t ri) {
      const Morsel& mo = runs_morsels[static_cast<size_t>(ri)];
      // Sort the global index range [begin, end) of the shared key
      // arrays: slice, sort locally, then shift back to global indices.
      std::vector<columnar::SortKeySpec> local;
      local.reserve(keys.size());
      for (const columnar::SortKeySpec& k : keys) {
        Result<ArrayPtr> sliced =
            columnar::SliceArray(k.array, mo.begin, mo.end - mo.begin);
        if (!sliced.ok()) {
          errors[static_cast<size_t>(ri)] = sliced.status();
          return;
        }
        local.push_back({std::move(*sliced), k.ascending});
      }
      // Per-run top-N would be tempting, but the merge needs every run
      // row that could land in the global limit, i.e. up to `limit` rows
      // per run — which SortIndices(limit) already provides.
      Result<SelectionVector> sorted = columnar::SortIndices(
          local, limit >= 0 ? std::min(limit, mo.end - mo.begin) : -1);
      if (!sorted.ok()) {
        errors[static_cast<size_t>(ri)] = sorted.status();
        return;
      }
      SelectionVector& run = runs[static_cast<size_t>(ri)];
      run = std::move(*sorted);
      for (int64_t& idx : run) idx += mo.begin;
    });
    BAUPLAN_RETURN_NOT_OK(FirstError(errors));
    ctx->stats->sort_runs += nruns;
    ctx->Count("exec.breaker.sort_runs", nruns);
    if (ctx->options.tracer != nullptr) {
      for (size_t ri = 0; ri < runs.size(); ++ri) {
        uint64_t s = ctx->options.tracer->StartSpan(
            "op.sort.run", obs::span_kind::kOperator, span_id);
        ctx->options.tracer->AddAttribute(s, "run", StrCat(ri));
        ctx->options.tracer->AddAttribute(s, "rows",
                                          StrCat(runs[ri].size()));
        ctx->options.tracer->EndSpan(s);
      }
    }
    BAUPLAN_ASSIGN_OR_RETURN(SelectionVector indices,
                             columnar::MergeSortedRuns(keys, runs, limit));
    return columnar::TakeTable(input, indices);
  }
  BAUPLAN_ASSIGN_OR_RETURN(SelectionVector indices,
                           columnar::SortIndices(keys, limit));
  return columnar::TakeTable(input, indices);
}

/// Boxed stable sort (the seed implementation).
Result<Table> ExecSortScalar(const PlanNode& plan, const Table& input) {
  std::vector<ArrayPtr> key_arrays;
  for (const auto& key : plan.sort_keys) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*key.expr, input));
    key_arrays.push_back(std::move(arr));
  }
  std::vector<int64_t> indices(static_cast<size_t>(input.num_rows()));
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }
  std::stable_sort(
      indices.begin(), indices.end(), [&](int64_t a, int64_t b) {
        for (size_t k = 0; k < key_arrays.size(); ++k) {
          Value va = key_arrays[k]->GetValue(a);
          Value vb = key_arrays[k]->GetValue(b);
          int cmp = va.Compare(vb);
          if (cmp != 0) {
            return plan.sort_keys[k].ascending ? cmp < 0 : cmp > 0;
          }
        }
        return false;
      });
  return columnar::TakeTable(input, indices);
}

// ---------------------------------------------------------------- distinct

/// Hash-based distinct: vectorized row hashes + typed equality, keeping
/// the first occurrence of each row (deterministic).
Result<Table> ExecDistinctVectorized(const Table& input) {
  int64_t rows = input.num_rows();
  if (rows == 0 || input.num_columns() == 0) return input;
  const std::vector<ArrayPtr>& columns = input.columns();
  std::vector<uint64_t> hashes;
  for (size_t c = 0; c < columns.size(); ++c) {
    columnar::HashArray(*columns[c], /*combine=*/c > 0, &hashes);
  }
  std::unordered_map<uint64_t, std::vector<int64_t>> buckets;
  buckets.reserve(static_cast<size_t>(rows));
  SelectionVector keep;
  for (int64_t row = 0; row < rows; ++row) {
    std::vector<int64_t>& cands = buckets[hashes[static_cast<size_t>(row)]];
    bool dup = false;
    for (int64_t cand : cands) {
      if (columnar::RowsEqual(columns, row, columns, cand)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      cands.push_back(row);
      keep.push_back(row);
    }
  }
  if (keep.size() == static_cast<size_t>(rows)) return input;
  return columnar::TakeTable(input, keep);
}

/// Boxed distinct (the seed implementation).
Result<Table> ExecDistinctScalar(const Table& input) {
  std::unordered_map<std::vector<Value>, bool, KeyHash, KeyEq> seen;
  SelectionVector keep;
  for (int64_t row = 0; row < input.num_rows(); ++row) {
    std::vector<Value> key;
    key.reserve(static_cast<size_t>(input.num_columns()));
    for (int c = 0; c < input.num_columns(); ++c) {
      key.push_back(input.GetValue(row, c));
    }
    if (seen.emplace(std::move(key), true).second) keep.push_back(row);
  }
  if (keep.size() == static_cast<size_t>(input.num_rows())) {
    return input;
  }
  return columnar::TakeTable(input, keep);
}

// ------------------------------------------------------------ plan walker

const char* OpName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "scan";
    case PlanKind::kFilter:
      return "filter";
    case PlanKind::kProject:
      return "project";
    case PlanKind::kAggregate:
      return "aggregate";
    case PlanKind::kJoin:
      return "join";
    case PlanKind::kSort:
      return "sort";
    case PlanKind::kLimit:
      return "limit";
    case PlanKind::kUnion:
      return "union";
    case PlanKind::kDistinct:
      return "distinct";
  }
  return "unknown";
}

/// A zero-row table with `schema` — what an empty scan (a subtree the
/// optimizer proved returns no rows) produces without touching the
/// source.
Result<Table> MakeEmptyTable(const columnar::Schema& schema) {
  std::vector<columnar::ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(schema.num_fields()));
  for (const auto& field : schema.fields()) {
    columns.push_back(columnar::MakeBuilder(field.type)->Finish());
  }
  return Table::Make(schema, std::move(columns));
}

Result<Table> ExecNodeImpl(ExecContext* ctx, const PlanNode& plan,
                           uint64_t span_id) {
  // The streaming engine never reaches this walker (it has its own
  // driver), but guard on != kScalar so a streaming context recursing
  // through here would still pick the vectorized operators.
  bool vectorized = ctx->options.engine != ExecOptions::Engine::kScalar;
  switch (plan.kind) {
    case PlanKind::kScan: {
      if (plan.empty_scan) return MakeEmptyTable(plan.schema);
      BAUPLAN_ASSIGN_OR_RETURN(
          Table table, ctx->source->ScanTable(plan.table_name,
                                              plan.scan_columns,
                                              plan.scan_predicates));
      ctx->stats->rows_scanned += table.num_rows();
      ctx->Count("exec.rows_scanned", table.num_rows());
      return table;
    }
    case PlanKind::kFilter: {
      BAUPLAN_ASSIGN_OR_RETURN(Table input,
                               ExecNode(ctx, *plan.children[0], span_id));
      return vectorized ? ExecFilterVectorized(*ctx, plan, input)
                        : ExecFilterScalar(*ctx, plan, input);
    }
    case PlanKind::kProject: {
      BAUPLAN_ASSIGN_OR_RETURN(Table input,
                               ExecNode(ctx, *plan.children[0], span_id));
      return vectorized ? ExecProjectVectorized(*ctx, plan, input)
                        : ExecProjectScalar(plan, input);
    }
    case PlanKind::kAggregate: {
      BAUPLAN_ASSIGN_OR_RETURN(Table input,
                               ExecNode(ctx, *plan.children[0], span_id));
      return vectorized ? ExecAggregateVectorized(ctx, plan, input, span_id)
                        : ExecAggregateScalar(*ctx, plan, input);
    }
    case PlanKind::kJoin: {
      BAUPLAN_ASSIGN_OR_RETURN(Table left,
                               ExecNode(ctx, *plan.children[0], span_id));
      BAUPLAN_ASSIGN_OR_RETURN(Table right,
                               ExecNode(ctx, *plan.children[1], span_id));
      return vectorized ? ExecJoinVectorized(ctx, plan, left, right, span_id)
                        : ExecJoinScalar(*ctx, plan, left, right);
    }
    case PlanKind::kSort: {
      BAUPLAN_ASSIGN_OR_RETURN(Table input,
                               ExecNode(ctx, *plan.children[0], span_id));
      return vectorized
                 ? ExecSortVectorized(ctx, plan, input, /*limit=*/-1, span_id)
                 : ExecSortScalar(plan, input);
    }
    case PlanKind::kLimit: {
      const PlanNode& child = *plan.children[0];
      if (vectorized && child.kind == PlanKind::kSort &&
          !child.sort_keys.empty()) {
        // Top-N: push LIMIT into the sort (partial_sort of the same total
        // order produces exactly the stable full-sort prefix).
        ++ctx->stats->operators_executed;
        obs::ScopedSpan sort_span(ctx->options.tracer, "op.sort",
                                  obs::span_kind::kOperator, span_id);
        BAUPLAN_ASSIGN_OR_RETURN(
            Table input, ExecNode(ctx, *child.children[0], sort_span.id()));
        return ExecSortVectorized(ctx, child, input, plan.limit,
                                  sort_span.id());
      }
      BAUPLAN_ASSIGN_OR_RETURN(Table input, ExecNode(ctx, child, span_id));
      if (input.num_rows() <= plan.limit) return input;
      return columnar::SliceTable(input, 0, plan.limit);
    }
    case PlanKind::kUnion: {
      std::vector<Table> pieces;
      pieces.reserve(plan.children.size());
      for (const auto& child : plan.children) {
        BAUPLAN_ASSIGN_OR_RETURN(Table piece, ExecNode(ctx, *child,
                                                       span_id));
        // Branches align by position; rebind to the union's output
        // schema (names come from the first branch).
        BAUPLAN_ASSIGN_OR_RETURN(piece, Table::Make(plan.schema,
                                                    piece.columns()));
        pieces.push_back(std::move(piece));
      }
      if (pieces.size() == 1) return pieces[0];
      return columnar::ConcatTables(pieces);
    }
    case PlanKind::kDistinct: {
      BAUPLAN_ASSIGN_OR_RETURN(Table input,
                               ExecNode(ctx, *plan.children[0], span_id));
      return vectorized ? ExecDistinctVectorized(input)
                        : ExecDistinctScalar(input);
    }
  }
  return Status::Internal("unhandled plan kind");
}

Result<Table> ExecNode(ExecContext* ctx, const PlanNode& plan,
                       uint64_t parent_span) {
  ++ctx->stats->operators_executed;
  // Spans are opened and closed on the driver thread only; morsel workers
  // never touch the tracer.
  obs::ScopedSpan span(ctx->options.tracer,
                       StrCat("op.", OpName(plan.kind)),
                       obs::span_kind::kOperator, parent_span);
  Result<Table> out = ExecNodeImpl(ctx, plan, span.id());
  if (out.ok()) {
    // Every materialized operator output is an intermediate; scan outputs
    // are the query's inputs and do not count toward peak_bytes.
    if (plan.kind != PlanKind::kScan) ctx->TrackPeak(out->EstimatedBytes());
    if (ctx->options.tracer != nullptr) {
      ctx->options.tracer->AddAttribute(span.id(), "rows_out",
                                        StrCat(out->num_rows()));
    }
  }
  return out;
}

// ------------------------------------------------------- streaming engine
//
// The default engine. The plan splits into pipelines at breakers (hash
// build, sort, full aggregate, distinct, union, mid-chain limit); within a
// pipeline, filter -> project -> join-probe -> limit chains push each
// morsel end-to-end without concatenating an intermediate table. Chunks
// are produced by morsel workers but consumed on the driver in morsel
// order, so every merge point sees the same sequence the materialized
// engine sees — which is what keeps the two engines bit-identical for any
// thread count and memory budget. Breakers reuse the vectorized operator
// implementations (including their spill paths) on materialized inputs,
// so the budget semantics are the materialized engine's, verbatim.

Result<Table> ExecStreamingNode(ExecContext* ctx, const PlanNode& plan,
                                uint64_t parent_span);

/// One prepared streamable step of a pipeline.
struct StreamOp {
  const PlanNode* node = nullptr;
  uint64_t span = 0;       // open op.* span, closed when the drive ends
  bool all_refs = false;   // kProject: pure column selection, zero-copy
  std::shared_ptr<const JoinBuildState> join;  // kJoin: materialized build
  int64_t rows_out = 0;    // driver-accumulated, for the span attribute
};

/// Worker-side stat deltas for one chunk, folded into ExecStats by the
/// driver (workers never touch stats or metrics).
struct ChunkDelta {
  int64_t rows_filtered = 0;
  int64_t join_probe_rows = 0;
  std::vector<int64_t> rows_out;  // per op, rows after that op
};

/// The compiled shape of one pipeline: the source it scans (a Scan node
/// or a breaker), the streamable ops above it bottom-up, and the
/// top-of-chain LIMIT if there is one.
struct CompiledChain {
  const PlanNode* source = nullptr;
  std::vector<const PlanNode*> ops;  // ops[0] consumes the source
  const PlanNode* limit_node = nullptr;
  int64_t limit = -1;
};

/// Walks down from `head` through the streamable operators. A LIMIT is
/// streamable only at the head (it short-circuits dispatch there); deeper
/// limits, and every other kind, end the chain and become the source
/// breaker. Join descent follows the probe (left) side.
CompiledChain CompileChain(const PlanNode& head) {
  CompiledChain chain;
  const PlanNode* node = &head;
  if (node->kind == PlanKind::kLimit) {
    chain.limit_node = node;
    chain.limit = node->limit;
    node = node->children[0].get();
  }
  std::vector<const PlanNode*> down;
  while (node->kind == PlanKind::kFilter ||
         node->kind == PlanKind::kProject ||
         node->kind == PlanKind::kJoin) {
    down.push_back(node);
    node = node->children[0].get();
  }
  chain.source = node;
  chain.ops.assign(down.rbegin(), down.rend());
  return chain;
}

/// Applies one streamable operator to `chunk` in place. Every kernel here
/// is elementwise over rows, so running it per chunk yields exactly the
/// rows the materialized operator would produce for this morsel range —
/// the core of the bit-identity argument.
Status ApplyStreamOp(const ExecContext& ctx, const StreamOp& op,
                     Table* chunk, SelectionVector* scratch,
                     ChunkDelta* delta) {
  const PlanNode& node = *op.node;
  switch (node.kind) {
    case PlanKind::kFilter: {
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr mask,
                               EvaluateExpr(*node.predicate, *chunk));
      const auto* b = AsBool(*mask);
      if (b == nullptr) {
        return Status::InvalidArgument(
            StrCat("WHERE/HAVING must be boolean: ",
                   node.predicate->ToString()));
      }
      columnar::MaskToSelectionInto(*b, scratch);
      int64_t in_rows = chunk->num_rows();
      if (static_cast<int64_t>(scratch->size()) != in_rows) {
        BAUPLAN_ASSIGN_OR_RETURN(*chunk,
                                 columnar::TakeTable(*chunk, *scratch));
      }
      delta->rows_filtered += in_rows - chunk->num_rows();
      return Status::OK();
    }
    case PlanKind::kProject: {
      std::vector<ArrayPtr> columns;
      columns.reserve(node.expressions.size());
      if (op.all_refs) {
        for (const auto& expr : node.expressions) {
          BAUPLAN_ASSIGN_OR_RETURN(
              ArrayPtr col, chunk->GetColumnByName(expr->column_name));
          columns.push_back(std::move(col));
        }
      } else {
        for (const auto& expr : node.expressions) {
          BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col,
                                   EvaluateExpr(*expr, *chunk));
          columns.push_back(std::move(col));
        }
      }
      BAUPLAN_ASSIGN_OR_RETURN(
          *chunk, TableFromArrays(node.output_names, std::move(columns)));
      return Status::OK();
    }
    case PlanKind::kJoin: {
      const JoinBuildState& st = *op.join;
      std::vector<ArrayPtr> left_keys;
      left_keys.reserve(node.left_keys.size());
      for (const auto& k : node.left_keys) {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*k, *chunk));
        left_keys.push_back(std::move(arr));
      }
      std::vector<uint8_t> left_null =
          JoinNullFlags(left_keys, chunk->num_rows());
      std::vector<uint64_t> left_hashes;
      if (st.mode == JoinBuildState::Mode::kBuckets) {
        for (size_t k = 0; k < left_keys.size(); ++k) {
          columnar::HashArray(*left_keys[k], /*combine=*/k > 0,
                              &left_hashes);
        }
      }
      SelectionVector out_l, out_r;
      ProbeJoinRows(st, left_keys, left_hashes, left_null, 0,
                    chunk->num_rows(), &out_l, &out_r);
      delta->join_probe_rows += chunk->num_rows();
      int left_cols = chunk->num_columns();
      int total_cols = left_cols + st.right.num_columns();
      std::vector<ArrayPtr> columns(static_cast<size_t>(total_cols));
      for (int c = 0; c < total_cols; ++c) {
        BAUPLAN_ASSIGN_OR_RETURN(
            ArrayPtr col,
            c < left_cols ? columnar::Take(chunk->column(c), out_l)
                          : columnar::TakeAllowNull(
                                st.right.column(c - left_cols), out_r));
        columns[static_cast<size_t>(c)] = std::move(col);
      }
      BAUPLAN_ASSIGN_OR_RETURN(Table joined,
                               Table::Make(node.schema, std::move(columns)));
      if (node.residual != nullptr) {
        BAUPLAN_ASSIGN_OR_RETURN(joined,
                                 ApplyJoinResidual(node, joined, out_r));
      }
      *chunk = std::move(joined);
      return Status::OK();
    }
    default:
      return Status::Internal("non-streamable op in pipeline chain");
  }
}

/// Pushes one chunk through the whole prepared chain. Runs on morsel
/// workers; one scratch selection per in-flight chunk (capacity reused
/// across the ops of the chain).
Status ProcessChunk(const ExecContext& ctx,
                    const std::vector<StreamOp>& ops, Table* chunk,
                    ChunkDelta* delta) {
  delta->rows_out.assign(ops.size(), 0);
  SelectionVector scratch;
  for (size_t i = 0; i < ops.size(); ++i) {
    BAUPLAN_RETURN_NOT_OK(ApplyStreamOp(ctx, ops[i], chunk, &scratch,
                                        delta));
    delta->rows_out[i] = chunk->num_rows();
    ctx.TrackPeak(chunk->EstimatedBytes());
  }
  return Status::OK();
}

/// Drives `source` through the prepared ops morsel-by-morsel. Morsels are
/// dispatched in ordered batches of 2x the worker count; `consume` runs on
/// the driver in morsel order. `limit >= 0` trims the consumed stream to
/// its first `limit` rows and stops dispatching further batches once the
/// ordered prefix satisfies it — the early exit that makes `morsels`
/// (completed) fall short of `morsels_scheduled` (the dispatch plan).
/// Closes the ops' spans (with rows_out) and clears `ops` when done.
Status DriveMorsels(ExecContext* ctx, const Table& source,
                    std::vector<StreamOp>* ops, int64_t limit,
                    const std::function<Status(Table)>& consume) {
  const ExecContext& cctx = *ctx;
  std::vector<Morsel> morsels =
      MakeMorsels(source.num_rows(), cctx.options.morsel_rows);
  int64_t total = static_cast<int64_t>(morsels.size());
  ctx->stats->morsels_scheduled += total;
  cctx.Count("exec.morsels_scheduled", total);
  int threads = cctx.pool != nullptr ? cctx.pool->num_workers() + 1 : 1;
  int64_t batch = std::max<int64_t>(1, 2 * threads);
  int64_t consumed_rows = 0;
  int64_t rows_filtered = 0;
  int64_t probe_rows = 0;
  Status failed;
  for (int64_t next = 0; next < total && failed.ok();) {
    int64_t b = std::min(batch, total - next);
    std::vector<Table> out(static_cast<size_t>(b));
    std::vector<ChunkDelta> deltas(static_cast<size_t>(b));
    std::vector<Status> errors(static_cast<size_t>(b));
    auto work = [&](int64_t k) {
      const Morsel& mo = morsels[static_cast<size_t>(next + k)];
      Result<Table> chunk =
          columnar::SliceTable(source, mo.begin, mo.end - mo.begin);
      if (!chunk.ok()) {
        errors[static_cast<size_t>(k)] = chunk.status();
        return;
      }
      cctx.TrackPeak(chunk->EstimatedBytes());
      Status s = ProcessChunk(cctx, *ops, &*chunk,
                              &deltas[static_cast<size_t>(k)]);
      if (!s.ok()) {
        errors[static_cast<size_t>(k)] = s;
        return;
      }
      out[static_cast<size_t>(k)] = std::move(*chunk);
    };
    if (cctx.pool != nullptr) {
      cctx.pool->ParallelFor(b, work);
    } else {
      for (int64_t k = 0; k < b; ++k) work(k);
    }
    // Ordered consume on the driver. Trailing chunks of the final batch
    // trim to zero rows once the limit is met — they completed, they just
    // contribute nothing.
    for (int64_t k = 0; k < b && failed.ok(); ++k) {
      const ChunkDelta& d = deltas[static_cast<size_t>(k)];
      failed = errors[static_cast<size_t>(k)];
      if (!failed.ok()) break;
      rows_filtered += d.rows_filtered;
      probe_rows += d.join_probe_rows;
      for (size_t i = 0; i < ops->size(); ++i) {
        (*ops)[i].rows_out += d.rows_out[i];
      }
      Table chunk = std::move(out[static_cast<size_t>(k)]);
      if (limit >= 0 && consumed_rows + chunk.num_rows() > limit) {
        Result<Table> trimmed =
            columnar::SliceTable(chunk, 0, limit - consumed_rows);
        if (!trimmed.ok()) {
          failed = trimmed.status();
          break;
        }
        chunk = std::move(*trimmed);
      }
      consumed_rows += chunk.num_rows();
      failed = consume(std::move(chunk));
    }
    ctx->stats->morsels += b;
    cctx.Count("exec.morsels", b);
    next += b;
    if (limit >= 0 && consumed_rows >= limit) break;
  }
  ctx->stats->rows_filtered += rows_filtered;
  cctx.Count("exec.rows_filtered", rows_filtered);
  ctx->stats->join_probe_rows += probe_rows;
  cctx.Count("exec.join_probe_rows", probe_rows);
  if (cctx.options.tracer != nullptr) {
    for (const StreamOp& op : *ops) {
      cctx.options.tracer->AddAttribute(op.span, "rows_out",
                                        StrCat(op.rows_out));
      cctx.options.tracer->EndSpan(op.span);
    }
  }
  ops->clear();
  return failed;
}

/// Streaming aggregate sink. Re-slices the incoming ordered chunk stream
/// into cuts at exactly the `morsel_rows` boundaries MakeMorsels would
/// put on the materialized input, aggregates cuts in parallel batches,
/// and merges partials in cut order — so partial float sums associate
/// identically to the materialized path (bit-identity) while input
/// residency stays O(threads x morsel).
class AggregateStream {
 public:
  AggregateStream(ExecContext* ctx, const PlanNode& plan, uint64_t span_id)
      : ctx_(ctx), plan_(plan), span_id_(span_id) {
    cut_rows_ = ctx->options.morsel_rows > 0 ? ctx->options.morsel_rows
                                             : 64 * 1024;
    int threads = ctx->pool != nullptr ? ctx->pool->num_workers() + 1 : 1;
    flush_cuts_ = std::max<int64_t>(1, 2 * threads);
  }

  Status Consume(Table chunk) {
    buffered_ += chunk.num_rows();
    buffer_.push_back(std::move(chunk));
    while (buffered_ >= cut_rows_) {
      BAUPLAN_RETURN_NOT_OK(Cut(cut_rows_));
      if (static_cast<int64_t>(pending_.size()) >= flush_cuts_) {
        BAUPLAN_RETURN_NOT_OK(Flush());
      }
    }
    return Status::OK();
  }

  Result<Table> Finish() {
    // The final partial cut; an empty stream still aggregates one empty
    // cut, mirroring MakeMorsels' one-empty-morsel contract (typed empty
    // grouped output, one-row global aggregates, eager expression
    // checking).
    if (buffered_ > 0 || total_cuts_ == 0) {
      BAUPLAN_RETURN_NOT_OK(Cut(buffered_));
    }
    BAUPLAN_RETURN_NOT_OK(Flush());
    return MergePartialsAndEmit(ctx_, plan_, std::move(partials_), span_id_);
  }

 private:
  /// Assembles the next `rows` rows from the front of the buffer into one
  /// cut (rows == 0 drains the remaining typed-empty chunks).
  Status Cut(int64_t rows) {
    std::vector<Table> pieces;
    int64_t need = rows;
    while (!buffer_.empty()) {
      Table& front = buffer_.front();
      int64_t avail = front.num_rows() - front_offset_;
      if (need < avail) {
        BAUPLAN_ASSIGN_OR_RETURN(
            Table piece, columnar::SliceTable(front, front_offset_, need));
        pieces.push_back(std::move(piece));
        front_offset_ += need;
        need = 0;
        break;
      }
      if (front_offset_ == 0) {
        pieces.push_back(std::move(front));
      } else {
        BAUPLAN_ASSIGN_OR_RETURN(
            Table piece, columnar::SliceTable(front, front_offset_, avail));
        pieces.push_back(std::move(piece));
      }
      buffer_.pop_front();
      front_offset_ = 0;
      need -= avail;
      if (need == 0 && rows > 0) break;
    }
    buffered_ -= rows;
    ++total_cuts_;
    Table cut;
    if (pieces.size() == 1) {
      cut = std::move(pieces[0]);
    } else {
      BAUPLAN_ASSIGN_OR_RETURN(cut, columnar::ConcatTables(pieces));
    }
    ctx_->TrackPeak(cut.EstimatedBytes());
    pending_.push_back(std::move(cut));
    return Status::OK();
  }

  Status Flush() {
    if (pending_.empty()) return Status::OK();
    int64_t n = static_cast<int64_t>(pending_.size());
    std::vector<MorselGroups> partials(static_cast<size_t>(n));
    std::vector<Status> errors(static_cast<size_t>(n));
    RunMorsels(*ctx_, n, [&](int64_t i) {
      errors[static_cast<size_t>(i)] = AggregateMorsel(
          plan_, pending_[static_cast<size_t>(i)],
          &partials[static_cast<size_t>(i)]);
    });
    BAUPLAN_RETURN_NOT_OK(FirstError(errors));
    // Partials accumulate in cut order and merge once at Finish (cut
    // index = the materialized path's morsel index, so the merge order
    // matches it exactly). A partial holds group reps + states, not rows,
    // so retention stays small next to the streamed input.
    for (MorselGroups& part : partials) {
      partials_.push_back(std::move(part));
    }
    pending_.clear();
    return Status::OK();
  }

  ExecContext* ctx_;
  const PlanNode& plan_;
  int64_t cut_rows_ = 0;
  int64_t flush_cuts_ = 0;
  std::deque<Table> buffer_;
  int64_t front_offset_ = 0;  // rows of buffer_.front() already cut
  int64_t buffered_ = 0;
  std::vector<Table> pending_;  // cuts awaiting aggregation
  int64_t total_cuts_ = 0;
  std::vector<MorselGroups> partials_;  // cut-order partial groups
  uint64_t span_id_ = 0;
};

/// Resolves a pipeline's source: Scan nodes read the table here (under
/// their own op.scan span); anything else is a breaker whose subtree —
/// including the pipelines feeding it — nests under this pipeline's span.
Result<Table> ResolveSource(ExecContext* ctx, const PlanNode& node,
                            uint64_t pipe_span) {
  if (node.kind != PlanKind::kScan) {
    return ExecStreamingNode(ctx, node, pipe_span);
  }
  if (node.empty_scan) return MakeEmptyTable(node.schema);
  ++ctx->stats->operators_executed;
  obs::ScopedSpan span(ctx->options.tracer, "op.scan",
                       obs::span_kind::kOperator, pipe_span);
  BAUPLAN_ASSIGN_OR_RETURN(
      Table table, ctx->source->ScanTable(node.table_name,
                                          node.scan_columns,
                                          node.scan_predicates));
  ctx->stats->rows_scanned += table.num_rows();
  ctx->Count("exec.rows_scanned", table.num_rows());
  if (ctx->options.tracer != nullptr) {
    ctx->options.tracer->AddAttribute(span.id(), "rows_out",
                                      StrCat(table.num_rows()));
  }
  return table;
}

/// Streaming top-N with upstream short-circuit: LIMIT fused into the sort
/// breaker AND pushed below it as a morsel dispatch filter. Applies when
/// the chain under the sort is filters-only (so sort keys evaluated over
/// the unfiltered source bound every surviving row) and no budget is set.
///
/// The driver keeps `cand`, the provably-global top-N of the morsels
/// consumed so far, always sorted. Before dispatching a morsel it checks
/// the morsel's best possible first-key cell (SortExtremeRow over the
/// source range) against the current N-th candidate: once `cand` is
/// saturated, a morsel whose best cell orders strictly after the cutoff
/// cannot contribute — every row it holds loses to all N candidates — so
/// the morsel is never executed. A tie is also a loss for single-key
/// sorts: undispatched rows sit at larger global indices than every
/// candidate, and the total order breaks key ties by global index.
///
/// Bit-identity: skipped morsels contribute no output rows, retained rows
/// keep their relative order through the batched compactions (stable
/// local-index tie-break = global-index tie-break, since candidates
/// always precede newer rows), so the emitted bytes equal the
/// materialize-everything sort for any thread count — only
/// exec.morsels (completed) falls short of exec.morsels_scheduled.
/// Deep-copies an expression tree (local to the top-N rewrite; the
/// planner's clone is not exported).
ExprPtr CloneExprTree(const ExprPtr& expr) {
  if (expr == nullptr) return nullptr;
  auto copy = std::make_shared<Expr>(*expr);
  copy->left = CloneExprTree(expr->left);
  copy->right = CloneExprTree(expr->right);
  copy->between_low = CloneExprTree(expr->between_low);
  copy->between_high = CloneExprTree(expr->between_high);
  for (auto& a : copy->args) a = CloneExprTree(a);
  for (auto& e : copy->list) e = CloneExprTree(e);
  return copy;
}

/// Rewrites `expr` — bound against `project`'s output — into an
/// expression over the project's input by inlining the projected
/// expression at every column reference (matching on output name).
/// Clears `*ok` when a referenced name is not produced by the
/// projection, in which case the rewrite is unusable.
ExprPtr InlineProjection(const ExprPtr& expr, const PlanNode& project,
                         bool* ok) {
  if (expr == nullptr || !*ok) return nullptr;
  if (expr->kind == ExprKind::kColumnRef) {
    for (size_t i = 0; i < project.output_names.size(); ++i) {
      if (project.output_names[i] == expr->column_name) {
        return CloneExprTree(project.expressions[i]);
      }
    }
    *ok = false;
    return nullptr;
  }
  auto copy = std::make_shared<Expr>(*expr);
  copy->left = InlineProjection(expr->left, project, ok);
  copy->right = InlineProjection(expr->right, project, ok);
  copy->between_low = InlineProjection(expr->between_low, project, ok);
  copy->between_high = InlineProjection(expr->between_high, project, ok);
  for (auto& a : copy->args) a = InlineProjection(a, project, ok);
  for (auto& e : copy->list) e = InlineProjection(e, project, ok);
  return copy;
}

Result<Table> ExecStreamTopN(ExecContext* ctx, const PlanNode& limit_node,
                             const PlanNode& sort, uint64_t parent_span,
                             bool* handled) {
  *handled = false;
  int64_t limit = limit_node.limit;
  if (limit <= 0 || ctx->options.memory_budget_bytes > 0) return Table();
  CompiledChain chain = CompileChain(*sort.children[0]);
  if (chain.limit_node != nullptr) return Table();
  for (const PlanNode* op : chain.ops) {
    if (op->kind != PlanKind::kFilter && op->kind != PlanKind::kProject) {
      return Table();
    }
  }
  // Compose every sort key down through the chain's projections (last
  // to first) so the per-morsel bound can evaluate over the raw source.
  // Projections are pure per-row expressions, so the composed key of a
  // source row equals the post-chain key of whatever the chain keeps of
  // that row. A name the projections cannot resolve disqualifies the
  // rewrite entirely.
  std::vector<ExprPtr> source_key_exprs;
  source_key_exprs.reserve(sort.sort_keys.size());
  for (const auto& key : sort.sort_keys) {
    ExprPtr e = CloneExprTree(key.expr);
    bool ok = true;
    for (auto it = chain.ops.rbegin(); it != chain.ops.rend() && ok; ++it) {
      if ((*it)->kind == PlanKind::kProject) {
        e = InlineProjection(e, **it, &ok);
      }
    }
    if (!ok || e == nullptr) return Table();
    source_key_exprs.push_back(std::move(e));
  }
  *handled = true;
  const ExecContext& cctx = *ctx;
  obs::Tracer* tracer = cctx.options.tracer;

  ++ctx->stats->operators_executed;  // the limit
  obs::ScopedSpan limit_span(tracer, "op.limit", obs::span_kind::kOperator,
                             parent_span);
  ++ctx->stats->operators_executed;  // the sort breaker
  obs::ScopedSpan sort_span(tracer, "op.sort", obs::span_kind::kOperator,
                            limit_span.id());
  ++ctx->stats->pipelines;
  cctx.Count("exec.pipelines", 1);
  obs::ScopedSpan pipe(tracer, "pipeline", obs::span_kind::kPipeline,
                       sort_span.id());
  BAUPLAN_ASSIGN_OR_RETURN(Table source,
                           ResolveSource(ctx, *chain.source, pipe.id()));

  // Composed sort keys over the unfiltered source: filters only drop
  // rows, so a surviving row's keys are its source-row keys and the
  // per-morsel extreme is a valid bound for whatever the chain keeps.
  std::vector<columnar::SortKeySpec> keys;
  keys.reserve(sort.sort_keys.size());
  for (size_t i = 0; i < sort.sort_keys.size(); ++i) {
    BAUPLAN_ASSIGN_OR_RETURN(
        ArrayPtr arr, EvaluateExpr(*source_key_exprs[i], source));
    keys.push_back({std::move(arr), sort.sort_keys[i].ascending});
  }
  if (keys.empty()) return Status::Internal("top-N sort without keys");

  // Prepare the filter ops (with spans), priming an empty chunk through
  // each for eager expression checking — mirroring StreamChainInto.
  std::vector<StreamOp> ops;
  ops.reserve(chain.ops.size());
  BAUPLAN_ASSIGN_OR_RETURN(Table primer, columnar::SliceTable(source, 0, 0));
  ChunkDelta primer_delta;
  for (const PlanNode* node : chain.ops) {
    ++ctx->stats->operators_executed;
    StreamOp op;
    op.node = node;
    op.span = tracer != nullptr
                  ? tracer->StartSpan(StrCat("op.", OpName(node->kind)),
                                      obs::span_kind::kOperator, pipe.id())
                  : 0;
    ops.push_back(std::move(op));
    SelectionVector scratch;
    BAUPLAN_RETURN_NOT_OK(ApplyStreamOp(cctx, ops.back(), &primer, &scratch,
                                        &primer_delta));
  }
  Table cand = std::move(primer);  // post-filter schema, zero rows
  ArrayPtr cand_key0;              // first sort key over `cand`

  std::vector<Morsel> morsels =
      MakeMorsels(source.num_rows(), cctx.options.morsel_rows);
  int64_t total = static_cast<int64_t>(morsels.size());
  ctx->stats->morsels_scheduled += total;
  cctx.Count("exec.morsels_scheduled", total);
  int threads = cctx.pool != nullptr ? cctx.pool->num_workers() + 1 : 1;
  int64_t batch = std::max<int64_t>(1, 2 * threads);
  int64_t skipped = 0;
  int64_t rows_filtered = 0;
  Status failed;
  for (int64_t next = 0; next < total && failed.ok();) {
    // Pick the next batch of morsels that could still contribute.
    std::vector<Morsel> todo;
    while (next < total && static_cast<int64_t>(todo.size()) < batch) {
      const Morsel& mo = morsels[static_cast<size_t>(next)];
      bool skip = false;
      if (cand.num_rows() >= limit && mo.end > mo.begin) {
        int64_t bound = columnar::SortExtremeRow(keys[0], mo.begin, mo.end);
        int c = CompareSortCells(*keys[0].array, bound, *cand_key0,
                                 cand.num_rows() - 1);
        int eff = keys[0].ascending ? c : -c;
        skip = eff > 0 || (eff == 0 && keys.size() == 1);
      }
      if (skip) {
        ++skipped;
      } else {
        todo.push_back(mo);
      }
      ++next;
    }
    if (todo.empty()) continue;
    int64_t b = static_cast<int64_t>(todo.size());
    std::vector<Table> out(static_cast<size_t>(b));
    std::vector<ChunkDelta> deltas(static_cast<size_t>(b));
    std::vector<Status> errors(static_cast<size_t>(b));
    auto work = [&](int64_t k) {
      const Morsel& mo = todo[static_cast<size_t>(k)];
      Result<Table> chunk =
          columnar::SliceTable(source, mo.begin, mo.end - mo.begin);
      if (!chunk.ok()) {
        errors[static_cast<size_t>(k)] = chunk.status();
        return;
      }
      cctx.TrackPeak(chunk->EstimatedBytes());
      Status s = ProcessChunk(cctx, ops, &*chunk,
                              &deltas[static_cast<size_t>(k)]);
      if (!s.ok()) {
        errors[static_cast<size_t>(k)] = s;
        return;
      }
      out[static_cast<size_t>(k)] = std::move(*chunk);
    };
    if (cctx.pool != nullptr) {
      cctx.pool->ParallelFor(b, work);
    } else {
      for (int64_t k = 0; k < b; ++k) work(k);
    }
    failed = FirstError(errors);
    ctx->stats->morsels += b;
    cctx.Count("exec.morsels", b);
    if (!failed.ok()) break;
    for (int64_t k = 0; k < b; ++k) {
      const ChunkDelta& d = deltas[static_cast<size_t>(k)];
      rows_filtered += d.rows_filtered;
      for (size_t i = 0; i < ops.size(); ++i) {
        ops[i].rows_out += d.rows_out[i];
      }
    }
    // Compact: candidates first (they precede the new chunks globally),
    // new chunks in morsel order behind them, stable top-N re-sort.
    failed = [&]() -> Status {
      std::vector<Table> pieces;
      pieces.reserve(static_cast<size_t>(b) + 1);
      pieces.push_back(std::move(cand));
      for (Table& t : out) pieces.push_back(std::move(t));
      BAUPLAN_ASSIGN_OR_RETURN(Table merged, columnar::ConcatTables(pieces));
      std::vector<columnar::SortKeySpec> merged_keys;
      merged_keys.reserve(sort.sort_keys.size());
      for (const auto& key : sort.sort_keys) {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr,
                                 EvaluateExpr(*key.expr, merged));
        merged_keys.push_back({std::move(arr), key.ascending});
      }
      BAUPLAN_ASSIGN_OR_RETURN(SelectionVector top,
                               columnar::SortIndices(merged_keys, limit));
      BAUPLAN_ASSIGN_OR_RETURN(cand, columnar::TakeTable(merged, top));
      cctx.TrackPeak(cand.EstimatedBytes());
      BAUPLAN_ASSIGN_OR_RETURN(cand_key0,
                               EvaluateExpr(*sort.sort_keys[0].expr, cand));
      return Status::OK();
    }();
  }
  ctx->stats->rows_filtered += rows_filtered;
  cctx.Count("exec.rows_filtered", rows_filtered);
  ctx->stats->topn_morsels_skipped += skipped;
  cctx.Count("exec.breaker.topn_skipped", skipped);
  if (tracer != nullptr) {
    for (const StreamOp& op : ops) {
      tracer->AddAttribute(op.span, "rows_out", StrCat(op.rows_out));
      tracer->EndSpan(op.span);
    }
    tracer->AddAttribute(sort_span.id(), "rows_out",
                         StrCat(cand.num_rows()));
    tracer->AddAttribute(sort_span.id(), "morsels_skipped",
                         StrCat(skipped));
    tracer->AddAttribute(limit_span.id(), "rows_out",
                         StrCat(cand.num_rows()));
  }
  BAUPLAN_RETURN_NOT_OK(failed);
  ctx->TrackPeak(cand.EstimatedBytes());
  return cand;
}

/// Compiles and drives the pipeline rooted at `head`, handing each
/// processed chunk to `consume` in morsel order on the driver thread.
/// `*passthrough` is set when the chain had nothing to do and `consume`
/// received the raw source table itself (so collectors can skip peak
/// accounting: inputs are not intermediates).
Status StreamChainInto(ExecContext* ctx, const PlanNode& head,
                       uint64_t parent_span,
                       const std::function<Status(Table)>& consume,
                       bool* passthrough) {
  *passthrough = false;
  CompiledChain chain = CompileChain(head);
  ++ctx->stats->pipelines;
  ctx->Count("exec.pipelines", 1);
  obs::ScopedSpan pipe(ctx->options.tracer, "pipeline",
                       obs::span_kind::kPipeline, parent_span);
  BAUPLAN_ASSIGN_OR_RETURN(Table source,
                           ResolveSource(ctx, *chain.source, pipe.id()));

  obs::Tracer* tracer = ctx->options.tracer;
  uint64_t limit_span = 0;
  if (chain.limit_node != nullptr) {
    ++ctx->stats->operators_executed;
    if (tracer != nullptr) {
      limit_span = tracer->StartSpan("op.limit", obs::span_kind::kOperator,
                                     pipe.id());
    }
  }
  int64_t consumed = 0;
  auto counted_consume = [&](Table chunk) {
    consumed += chunk.num_rows();
    return consume(std::move(chunk));
  };
  auto close_limit = [&]() {
    if (limit_span != 0) {
      tracer->AddAttribute(limit_span, "rows_out", StrCat(consumed));
      tracer->EndSpan(limit_span);
    }
  };

  if (chain.ops.empty()) {
    // Nothing to stream: hand over the source (sliced if a LIMIT caps it;
    // an uncut source is a pass-through, not an intermediate).
    Status s;
    if (chain.limit_node != nullptr && source.num_rows() > chain.limit) {
      BAUPLAN_ASSIGN_OR_RETURN(
          Table sliced, columnar::SliceTable(source, 0, chain.limit));
      s = counted_consume(std::move(sliced));
    } else {
      *passthrough = true;
      s = counted_consume(std::move(source));
    }
    close_limit();
    return s;
  }

  // Prepare the ops bottom-up, priming an empty chunk through each so the
  // next op (and join key typing) sees its output schema before any
  // morsel flows — the streaming analogue of MakeMorsels' one-empty-
  // morsel contract.
  BAUPLAN_ASSIGN_OR_RETURN(Table primer, columnar::SliceTable(source, 0, 0));
  std::vector<StreamOp> ops;
  ops.reserve(chain.ops.size());
  ChunkDelta primer_delta;  // discarded: the primer has no rows
  for (const PlanNode* node : chain.ops) {
    ++ctx->stats->operators_executed;
    uint64_t op_span =
        tracer != nullptr
            ? tracer->StartSpan(StrCat("op.", OpName(node->kind)),
                                obs::span_kind::kOperator, pipe.id())
            : 0;
    StreamOp op;
    op.node = node;
    op.span = op_span;
    if (node->kind == PlanKind::kProject) {
      op.all_refs = !node->expressions.empty();
      for (const auto& expr : node->expressions) {
        if (expr->kind != ExprKind::kColumnRef) {
          op.all_refs = false;
          break;
        }
      }
    }
    if (node->kind == PlanKind::kJoin) {
      auto st = std::make_shared<JoinBuildState>();
      BAUPLAN_ASSIGN_OR_RETURN(
          st->right, ExecStreamingNode(ctx, *node->children[1], op_span));
      for (const auto& k : node->right_keys) {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*k, st->right));
        st->right_keys.push_back(std::move(arr));
      }
      st->right_null = JoinNullFlags(st->right_keys, st->right.num_rows());
      if (!node->left_keys.empty() &&
          ShouldSpill(*ctx, st->right.EstimatedBytes())) {
        // The build side blew the budget: Grace needs both sides
        // materialized, so this join becomes a breaker. Materialize the
        // probe input from the chain driven so far and restart the
        // pipeline on the join's output.
        Table left;
        if (ops.empty()) {
          left = std::move(source);
        } else {
          std::vector<Table> parts;
          BAUPLAN_RETURN_NOT_OK(DriveMorsels(
              ctx, source, &ops, /*limit=*/-1, [&](Table chunk) {
                parts.push_back(std::move(chunk));
                return Status::OK();
              }));
          if (parts.size() == 1) {
            left = std::move(parts[0]);
          } else {
            BAUPLAN_ASSIGN_OR_RETURN(left, columnar::ConcatTables(parts));
          }
          ctx->TrackPeak(left.EstimatedBytes());
        }
        BAUPLAN_ASSIGN_OR_RETURN(
            source, ExecJoinVectorized(ctx, *node, left, st->right,
                                       op_span));
        ctx->TrackPeak(source.EstimatedBytes());
        if (tracer != nullptr) {
          tracer->AddAttribute(op_span, "rows_out",
                               StrCat(source.num_rows()));
          tracer->EndSpan(op_span);
        }
        BAUPLAN_ASSIGN_OR_RETURN(primer,
                                 columnar::SliceTable(source, 0, 0));
        continue;
      }
      std::vector<TypeId> left_key_types;
      left_key_types.reserve(node->left_keys.size());
      for (const auto& k : node->left_keys) {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*k, primer));
        left_key_types.push_back(arr->type());
      }
      BAUPLAN_RETURN_NOT_OK(st->Build(ctx, *node, left_key_types, op_span));
      op.join = std::move(st);
    }
    ops.push_back(std::move(op));
    SelectionVector scratch;
    BAUPLAN_RETURN_NOT_OK(ApplyStreamOp(*ctx, ops.back(), &primer,
                                        &scratch, &primer_delta));
  }

  Status s;
  if (ops.empty()) {
    // Every op collapsed into breaker-ized joins; the "chain" is now the
    // last join's output.
    if (chain.limit_node != nullptr && source.num_rows() > chain.limit) {
      Result<Table> sliced = columnar::SliceTable(source, 0, chain.limit);
      s = sliced.ok() ? counted_consume(std::move(*sliced))
                      : sliced.status();
    } else {
      s = counted_consume(std::move(source));
    }
  } else {
    s = DriveMorsels(ctx, source, &ops,
                     chain.limit_node != nullptr ? chain.limit : -1,
                     counted_consume);
  }
  close_limit();
  return s;
}

/// Streams the chain rooted at `head` and materializes the result — the
/// collector used for pipeline outputs and breaker inputs.
Result<Table> ExecStreamChain(ExecContext* ctx, const PlanNode& head,
                              uint64_t parent_span) {
  std::vector<Table> parts;
  bool passthrough = false;
  BAUPLAN_RETURN_NOT_OK(StreamChainInto(
      ctx, head, parent_span,
      [&](Table chunk) {
        parts.push_back(std::move(chunk));
        return Status::OK();
      },
      &passthrough));
  Table result;
  if (parts.size() == 1) {
    result = std::move(parts[0]);
  } else {
    BAUPLAN_ASSIGN_OR_RETURN(result, columnar::ConcatTables(parts));
  }
  if (!passthrough) ctx->TrackPeak(result.EstimatedBytes());
  return result;
}

/// Aggregate node under the streaming engine. With no budget (or a global
/// aggregate, whose state is O(1) per morsel) the child pipeline streams
/// straight into the aggregate sink; a grouped aggregate under a budget
/// materializes its input first so the spill decision — which is input-
/// size-based — lands exactly where the materialized engine puts it.
Result<Table> ExecStreamAggregate(ExecContext* ctx, const PlanNode& plan,
                                  uint64_t parent_span) {
  ++ctx->stats->operators_executed;
  obs::ScopedSpan span(ctx->options.tracer, "op.aggregate",
                       obs::span_kind::kOperator, parent_span);
  const PlanNode& child = *plan.children[0];
  Result<Table> out = Status::Internal("unreachable");
  if (!plan.group_by.empty() && ctx->options.memory_budget_bytes > 0) {
    BAUPLAN_ASSIGN_OR_RETURN(Table input,
                             ExecStreamingNode(ctx, child, span.id()));
    out = ExecAggregateVectorized(ctx, plan, input, span.id());
  } else {
    AggregateStream sink(ctx, plan, span.id());
    bool passthrough = false;
    Status s = StreamChainInto(
        ctx, child, span.id(),
        [&](Table chunk) { return sink.Consume(std::move(chunk)); },
        &passthrough);
    out = s.ok() ? sink.Finish() : Result<Table>(s);
  }
  if (out.ok()) {
    ctx->TrackPeak(out->EstimatedBytes());
    if (ctx->options.tracer != nullptr) {
      ctx->options.tracer->AddAttribute(span.id(), "rows_out",
                                        StrCat(out->num_rows()));
    }
  }
  return out;
}

/// A breaker that materializes its child via the streaming engine and
/// applies the vectorized operator `body` to it. Opens the breaker's
/// op.* span; child pipelines nest under it.
Result<Table> ExecStreamBreaker(
    ExecContext* ctx, const PlanNode& plan, uint64_t parent_span,
    const std::function<Result<Table>(const Table&, uint64_t)>& body) {
  ++ctx->stats->operators_executed;
  obs::ScopedSpan span(ctx->options.tracer,
                       StrCat("op.", OpName(plan.kind)),
                       obs::span_kind::kOperator, parent_span);
  BAUPLAN_ASSIGN_OR_RETURN(
      Table input, ExecStreamingNode(ctx, *plan.children[0], span.id()));
  Result<Table> out = body(input, span.id());
  if (out.ok()) {
    ctx->TrackPeak(out->EstimatedBytes());
    if (ctx->options.tracer != nullptr) {
      ctx->options.tracer->AddAttribute(span.id(), "rows_out",
                                        StrCat(out->num_rows()));
    }
  }
  return out;
}

Result<Table> ExecStreamingNode(ExecContext* ctx, const PlanNode& plan,
                                uint64_t parent_span) {
  switch (plan.kind) {
    case PlanKind::kScan:
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kJoin:
      return ExecStreamChain(ctx, plan, parent_span);
    case PlanKind::kLimit: {
      const PlanNode& child = *plan.children[0];
      if (child.kind == PlanKind::kSort && !child.sort_keys.empty()) {
        // Top-N short-circuit: when the chain under the sort is
        // filters-only and no budget applies, the LIMIT also prunes
        // upstream morsel dispatch.
        bool handled = false;
        Result<Table> topn =
            ExecStreamTopN(ctx, plan, child, parent_span, &handled);
        if (handled) return topn;
        // Top-N: same fusion as the materialized engine — the LIMIT
        // pushes into the sort breaker instead of streaming.
        ++ctx->stats->operators_executed;  // the limit; the breaker
                                           // counts the sort
        obs::ScopedSpan limit_span(ctx->options.tracer, "op.limit",
                                   obs::span_kind::kOperator, parent_span);
        return ExecStreamBreaker(
            ctx, child, limit_span.id(),
            [&](const Table& input, uint64_t span_id) {
              return ExecSortVectorized(ctx, child, input, plan.limit,
                                        span_id);
            });
      }
      return ExecStreamChain(ctx, plan, parent_span);
    }
    case PlanKind::kAggregate:
      return ExecStreamAggregate(ctx, plan, parent_span);
    case PlanKind::kSort:
      return ExecStreamBreaker(
          ctx, plan, parent_span,
          [&](const Table& input, uint64_t span_id) {
            return ExecSortVectorized(ctx, plan, input, /*limit=*/-1,
                                      span_id);
          });
    case PlanKind::kDistinct:
      return ExecStreamBreaker(
          ctx, plan, parent_span,
          [&](const Table& input, uint64_t span_id) {
            (void)span_id;
            return ExecDistinctVectorized(input);
          });
    case PlanKind::kUnion: {
      ++ctx->stats->operators_executed;
      obs::ScopedSpan span(ctx->options.tracer, "op.union",
                           obs::span_kind::kOperator, parent_span);
      std::vector<Table> pieces;
      pieces.reserve(plan.children.size());
      for (const auto& child : plan.children) {
        BAUPLAN_ASSIGN_OR_RETURN(
            Table piece, ExecStreamingNode(ctx, *child, span.id()));
        BAUPLAN_ASSIGN_OR_RETURN(piece,
                                 Table::Make(plan.schema, piece.columns()));
        pieces.push_back(std::move(piece));
      }
      Result<Table> out = pieces.size() == 1
                              ? Result<Table>(std::move(pieces[0]))
                              : columnar::ConcatTables(pieces);
      if (out.ok()) {
        ctx->TrackPeak(out->EstimatedBytes());
        if (ctx->options.tracer != nullptr) {
          ctx->options.tracer->AddAttribute(span.id(), "rows_out",
                                            StrCat(out->num_rows()));
        }
      }
      return out;
    }
  }
  return Status::Internal("unhandled plan kind");
}

}  // namespace

Result<ExecOptions> ExecOptions::FromEnv() {
  ExecOptions options;
  if (const char* v = std::getenv("BAUPLAN_THREADS");
      v != nullptr && *v != '\0') {
    int64_t threads = 0;
    if (!ParseInt64(v, &threads) || threads < 1 || threads > 4096) {
      return Status::InvalidArgument(
          StrCat("BAUPLAN_THREADS must be an integer in [1, 4096], got \"",
                 v, "\""));
    }
    options.threads = static_cast<int>(threads);
  }
  if (const char* v = std::getenv("BAUPLAN_MEMORY_BUDGET");
      v != nullptr && *v != '\0') {
    int64_t budget = 0;
    if (!ParseInt64(v, &budget) || budget < 0) {
      return Status::InvalidArgument(
          StrCat("BAUPLAN_MEMORY_BUDGET must be a non-negative byte "
                 "count, got \"",
                 v, "\""));
    }
    options.memory_budget_bytes = budget;
  }
  return options;
}

Result<Table> ExecutePlan(const PlanNode& plan, TableSource* source,
                          ExecStats* stats, const ExecOptions& options) {
  ExecStats local;
  if (stats == nullptr) stats = &local;

  ExecContext ctx;
  ctx.source = source;
  ctx.stats = stats;
  ctx.options = options;
  std::atomic<int64_t> peak{0};
  ctx.peak = &peak;
  std::unique_ptr<storage::ObjectStore> owned_spill;
  if (options.memory_budget_bytes > 0) {
    if (options.spill_store != nullptr) {
      ctx.spill = options.spill_store;
    } else {
      owned_spill = std::make_unique<storage::MemoryObjectStore>();
      ctx.spill = owned_spill.get();
    }
    // Namespaces spill keys so concurrent queries sharing one store
    // (e.g. the facade's metered store) never collide.
    static std::atomic<uint64_t> next_query_id{1};
    ctx.spill_query_id = next_query_id.fetch_add(1);
  }
  std::unique_ptr<ThreadPool> owned_pool;
  if (options.pool != nullptr) {
    ctx.pool = options.pool;
  } else {
    // threads = total workers including this (driver) thread, which
    // participates in every ParallelFor. Requests beyond the hardware
    // concurrency are clamped: oversubscribing cores cannot help
    // wall-clock and costs context switches (results are unaffected —
    // the morsel partitioning never depends on the thread count).
    int threads = options.threads;
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw > 0 && threads > hw) threads = hw;
    if (threads > 1) {
      owned_pool = std::make_unique<ThreadPool>(threads - 1);
      ctx.pool = owned_pool.get();
    }
  }
  Result<Table> out =
      options.engine == ExecOptions::Engine::kStreaming
          ? ExecStreamingNode(&ctx, plan, options.parent_span)
          : ExecNode(&ctx, plan, options.parent_span);
  int64_t peak_bytes = peak.load(std::memory_order_relaxed);
  if (peak_bytes > stats->peak_bytes) stats->peak_bytes = peak_bytes;
  if (options.metrics != nullptr && out.ok()) {
    options.metrics->GetGauge("exec.peak_bytes")->SetMax(peak_bytes);
  }
  return out;
}

}  // namespace bauplan::sql
