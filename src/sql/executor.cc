#include "sql/executor.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "columnar/builder.h"
#include "columnar/compute.h"
#include "common/hash.h"
#include "common/strings.h"
#include "sql/expr_eval.h"

namespace bauplan::sql {

using columnar::ArrayPtr;
using columnar::AsBool;
using columnar::Field;
using columnar::Schema;
using columnar::Table;
using columnar::TypeId;
using columnar::Value;

namespace {

// ---------------------------------------------------------------- helpers

struct KeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (const auto& v : key) h = HashCombine(h, v.Hash());
    return static_cast<size_t>(h);
  }
};

struct KeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].is_null() != b[i].is_null()) return false;
      if (!a[i].is_null() && a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) < 0;
  }
};

/// Builds a table from evaluated arrays + names, deriving field types from
/// the arrays themselves.
Result<Table> TableFromArrays(const std::vector<std::string>& names,
                              std::vector<ArrayPtr> arrays) {
  std::vector<Field> fields;
  fields.reserve(arrays.size());
  for (size_t i = 0; i < arrays.size(); ++i) {
    fields.push_back({names[i], arrays[i]->type(), true});
  }
  return Table::Make(Schema(std::move(fields)), std::move(arrays));
}

// -------------------------------------------------------------- aggregate

/// Incremental state of one aggregate over one group.
struct AggState {
  int64_t count = 0;
  double sum_double = 0;
  int64_t sum_int = 0;
  bool saw_double = false;
  Value min;
  Value max;
  std::set<Value, ValueLess> distinct;
};

Result<Table> ExecAggregate(const PlanNode& plan, const Table& input) {
  // Evaluate group keys and aggregate arguments once, vectorized.
  std::vector<ArrayPtr> key_arrays;
  for (const auto& key : plan.group_by) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*key, input));
    key_arrays.push_back(std::move(arr));
  }
  std::vector<ArrayPtr> arg_arrays(plan.aggregates.size());
  for (size_t i = 0; i < plan.aggregates.size(); ++i) {
    if (plan.aggregates[i].arg != nullptr) {
      BAUPLAN_ASSIGN_OR_RETURN(
          arg_arrays[i], EvaluateExpr(*plan.aggregates[i].arg, input));
    }
  }

  std::unordered_map<std::vector<Value>, std::vector<AggState>, KeyHash,
                     KeyEq>
      groups;
  std::vector<std::vector<Value>> group_order;

  for (int64_t row = 0; row < input.num_rows(); ++row) {
    std::vector<Value> key;
    key.reserve(key_arrays.size());
    for (const auto& arr : key_arrays) key.push_back(arr->GetValue(row));
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key,
                          std::vector<AggState>(plan.aggregates.size()))
               .first;
      group_order.push_back(key);
    }
    std::vector<AggState>& states = it->second;
    for (size_t a = 0; a < plan.aggregates.size(); ++a) {
      const AggregateItem& agg = plan.aggregates[a];
      AggState& state = states[a];
      if (agg.arg == nullptr) {  // COUNT(*)
        ++state.count;
        continue;
      }
      Value v = arg_arrays[a]->GetValue(row);
      if (v.is_null()) continue;  // aggregates skip nulls
      if (agg.distinct && !state.distinct.insert(v).second) continue;
      ++state.count;
      if (agg.function == "SUM" || agg.function == "AVG") {
        if (v.type() == TypeId::kDouble) {
          state.saw_double = true;
          state.sum_double += v.double_value();
        } else {
          BAUPLAN_ASSIGN_OR_RETURN(double d, v.AsDouble());
          state.sum_double += d;
          state.sum_int += v.int64_value();
        }
      }
      if (state.min.is_null() || v.Compare(state.min) < 0) state.min = v;
      if (state.max.is_null() || v.Compare(state.max) > 0) state.max = v;
    }
  }

  // Global aggregate over an empty input still yields one row.
  if (plan.group_by.empty() && group_order.empty()) {
    group_order.emplace_back();
    groups.emplace(std::vector<Value>(),
                   std::vector<AggState>(plan.aggregates.size()));
  }

  // Emit one output row per group, in first-seen order (deterministic).
  std::vector<std::unique_ptr<columnar::ArrayBuilder>> builders;
  for (int i = 0; i < plan.schema.num_fields(); ++i) {
    builders.push_back(columnar::MakeBuilder(plan.schema.field(i).type));
  }
  for (const auto& key : group_order) {
    const std::vector<AggState>& states = groups.at(key);
    size_t col = 0;
    for (const auto& key_value : key) {
      BAUPLAN_RETURN_NOT_OK(builders[col++]->AppendValue(key_value));
    }
    for (size_t a = 0; a < plan.aggregates.size(); ++a) {
      const AggregateItem& agg = plan.aggregates[a];
      const AggState& state = states[a];
      Value out;
      if (agg.function == "COUNT") {
        out = Value::Int64(state.count);
      } else if (state.count == 0) {
        out = Value::Null();  // SUM/AVG/MIN/MAX of no values
      } else if (agg.function == "SUM") {
        out = state.saw_double ? Value::Double(state.sum_double)
                               : Value::Int64(state.sum_int);
      } else if (agg.function == "AVG") {
        out = Value::Double(state.sum_double /
                            static_cast<double>(state.count));
      } else if (agg.function == "MIN") {
        out = state.min;
      } else if (agg.function == "MAX") {
        out = state.max;
      } else {
        return Status::Internal(
            StrCat("unknown aggregate ", agg.function));
      }
      if (out.is_null()) {
        builders[col++]->AppendNull();
      } else {
        BAUPLAN_RETURN_NOT_OK(builders[col++]->AppendValue(out));
      }
    }
  }
  std::vector<ArrayPtr> columns;
  for (auto& b : builders) columns.push_back(b->Finish());
  return Table::Make(plan.schema, std::move(columns));
}

// ------------------------------------------------------------------- join

Result<Table> ExecJoin(const PlanNode& plan, const Table& left,
                       const Table& right) {
  // Evaluate key expressions on both sides.
  std::vector<ArrayPtr> left_keys, right_keys;
  for (const auto& k : plan.left_keys) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*k, left));
    left_keys.push_back(std::move(arr));
  }
  for (const auto& k : plan.right_keys) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*k, right));
    right_keys.push_back(std::move(arr));
  }

  // Build on the right side.
  std::unordered_map<std::vector<Value>, std::vector<int64_t>, KeyHash,
                     KeyEq>
      hash_table;
  for (int64_t row = 0; row < right.num_rows(); ++row) {
    std::vector<Value> key;
    bool has_null = false;
    for (const auto& arr : right_keys) {
      Value v = arr->GetValue(row);
      if (v.is_null()) has_null = true;
      key.push_back(std::move(v));
    }
    if (has_null) continue;  // null keys never join
    hash_table[std::move(key)].push_back(row);
  }

  // Probe with the left side; emit matched (and, for LEFT, unmatched)
  // index pairs. right index -1 = null row.
  std::vector<int64_t> out_left, out_right;
  for (int64_t row = 0; row < left.num_rows(); ++row) {
    std::vector<Value> key;
    bool has_null = false;
    for (const auto& arr : left_keys) {
      Value v = arr->GetValue(row);
      if (v.is_null()) has_null = true;
      key.push_back(std::move(v));
    }
    const std::vector<int64_t>* matches = nullptr;
    if (!has_null) {
      auto it = hash_table.find(key);
      if (it != hash_table.end()) matches = &it->second;
    }
    if (matches != nullptr) {
      for (int64_t r : *matches) {
        out_left.push_back(row);
        out_right.push_back(r);
      }
    } else if (plan.join_type == JoinType::kLeft) {
      out_left.push_back(row);
      out_right.push_back(-1);
    }
  }

  // Assemble the combined table.
  std::vector<ArrayPtr> columns;
  BAUPLAN_ASSIGN_OR_RETURN(Table left_rows,
                           columnar::TakeTable(left, out_left));
  for (int c = 0; c < left_rows.num_columns(); ++c) {
    columns.push_back(left_rows.column(c));
  }
  for (int c = 0; c < right.num_columns(); ++c) {
    auto builder = columnar::MakeBuilder(right.schema().field(c).type);
    const ArrayPtr& src = right.column(c);
    for (int64_t r : out_right) {
      if (r < 0 || src->IsNull(r)) {
        builder->AppendNull();
      } else {
        BAUPLAN_RETURN_NOT_OK(builder->AppendValue(src->GetValue(r)));
      }
    }
    columns.push_back(builder->Finish());
  }
  BAUPLAN_ASSIGN_OR_RETURN(Table joined,
                           Table::Make(plan.schema, std::move(columns)));

  if (plan.residual != nullptr) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr mask,
                             EvaluateExpr(*plan.residual, joined));
    const auto* b = AsBool(*mask);
    if (b == nullptr) {
      return Status::InvalidArgument("join residual must be boolean");
    }
    // For LEFT joins a residual only filters matched rows; rows already
    // null-extended stay. (Simplification: residual conditions in ON of a
    // left join that reference right columns evaluate to null there and
    // keep the row.)
    if (plan.join_type == JoinType::kLeft) {
      std::vector<int64_t> keep;
      for (int64_t i = 0; i < joined.num_rows(); ++i) {
        bool was_unmatched = out_right[static_cast<size_t>(i)] < 0;
        if (was_unmatched || (!b->IsNull(i) && b->Value(i))) {
          keep.push_back(i);
        }
      }
      return columnar::TakeTable(joined, keep);
    }
    return columnar::FilterTable(joined, *b);
  }
  return joined;
}

// -------------------------------------------------------------------- sort

Result<Table> ExecSort(const PlanNode& plan, const Table& input) {
  std::vector<ArrayPtr> key_arrays;
  for (const auto& key : plan.sort_keys) {
    BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr arr, EvaluateExpr(*key.expr, input));
    key_arrays.push_back(std::move(arr));
  }
  std::vector<int64_t> indices(static_cast<size_t>(input.num_rows()));
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }
  std::stable_sort(
      indices.begin(), indices.end(), [&](int64_t a, int64_t b) {
        for (size_t k = 0; k < key_arrays.size(); ++k) {
          Value va = key_arrays[k]->GetValue(a);
          Value vb = key_arrays[k]->GetValue(b);
          int cmp = va.Compare(vb);
          if (cmp != 0) {
            return plan.sort_keys[k].ascending ? cmp < 0 : cmp > 0;
          }
        }
        return false;
      });
  return columnar::TakeTable(input, indices);
}

}  // namespace

Result<Table> ExecutePlan(const PlanNode& plan, TableSource* source,
                          ExecStats* stats) {
  ExecStats local;
  if (stats == nullptr) stats = &local;
  ++stats->operators_executed;

  switch (plan.kind) {
    case PlanKind::kScan: {
      BAUPLAN_ASSIGN_OR_RETURN(
          Table table, source->ScanTable(plan.table_name, plan.scan_columns,
                                         plan.scan_predicates));
      stats->rows_scanned += table.num_rows();
      return table;
    }
    case PlanKind::kFilter: {
      BAUPLAN_ASSIGN_OR_RETURN(Table input,
                               ExecutePlan(*plan.children[0], source,
                                           stats));
      BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr mask,
                               EvaluateExpr(*plan.predicate, input));
      const auto* b = AsBool(*mask);
      if (b == nullptr) {
        return Status::InvalidArgument(
            StrCat("WHERE/HAVING must be boolean: ",
                   plan.predicate->ToString()));
      }
      return columnar::FilterTable(input, *b);
    }
    case PlanKind::kProject: {
      BAUPLAN_ASSIGN_OR_RETURN(Table input,
                               ExecutePlan(*plan.children[0], source,
                                           stats));
      std::vector<ArrayPtr> columns;
      for (const auto& expr : plan.expressions) {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, EvaluateExpr(*expr, input));
        columns.push_back(std::move(col));
      }
      return TableFromArrays(plan.output_names, std::move(columns));
    }
    case PlanKind::kAggregate: {
      BAUPLAN_ASSIGN_OR_RETURN(Table input,
                               ExecutePlan(*plan.children[0], source,
                                           stats));
      return ExecAggregate(plan, input);
    }
    case PlanKind::kJoin: {
      BAUPLAN_ASSIGN_OR_RETURN(Table left,
                               ExecutePlan(*plan.children[0], source,
                                           stats));
      BAUPLAN_ASSIGN_OR_RETURN(Table right,
                               ExecutePlan(*plan.children[1], source,
                                           stats));
      return ExecJoin(plan, left, right);
    }
    case PlanKind::kSort: {
      BAUPLAN_ASSIGN_OR_RETURN(Table input,
                               ExecutePlan(*plan.children[0], source,
                                           stats));
      return ExecSort(plan, input);
    }
    case PlanKind::kLimit: {
      BAUPLAN_ASSIGN_OR_RETURN(Table input,
                               ExecutePlan(*plan.children[0], source,
                                           stats));
      if (input.num_rows() <= plan.limit) return input;
      return columnar::SliceTable(input, 0, plan.limit);
    }
    case PlanKind::kUnion: {
      std::vector<Table> pieces;
      pieces.reserve(plan.children.size());
      for (const auto& child : plan.children) {
        BAUPLAN_ASSIGN_OR_RETURN(Table piece,
                                 ExecutePlan(*child, source, stats));
        // Branches align by position; rebind to the union's output
        // schema (names come from the first branch).
        BAUPLAN_ASSIGN_OR_RETURN(piece, Table::Make(plan.schema,
                                                    piece.columns()));
        pieces.push_back(std::move(piece));
      }
      if (pieces.size() == 1) return pieces[0];
      return columnar::ConcatTables(pieces);
    }
    case PlanKind::kDistinct: {
      BAUPLAN_ASSIGN_OR_RETURN(Table input,
                               ExecutePlan(*plan.children[0], source,
                                           stats));
      std::unordered_map<std::vector<Value>, bool, KeyHash, KeyEq> seen;
      std::vector<int64_t> keep;
      for (int64_t row = 0; row < input.num_rows(); ++row) {
        std::vector<Value> key;
        key.reserve(static_cast<size_t>(input.num_columns()));
        for (int c = 0; c < input.num_columns(); ++c) {
          key.push_back(input.GetValue(row, c));
        }
        if (seen.emplace(std::move(key), true).second) keep.push_back(row);
      }
      if (keep.size() == static_cast<size_t>(input.num_rows())) {
        return input;
      }
      return columnar::TakeTable(input, keep);
    }
  }
  return Status::Internal("unhandled plan kind");
}

}  // namespace bauplan::sql
