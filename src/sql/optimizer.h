#ifndef BAUPLAN_SQL_OPTIMIZER_H_
#define BAUPLAN_SQL_OPTIMIZER_H_

#include "common/result.h"
#include "sql/logical_plan.h"

namespace bauplan::sql {

/// Which rewrites to run; benches toggle these to ablate their effect.
struct OptimizerOptions {
  /// Converts `col <op> literal` WHERE conjuncts into scan predicate
  /// hints (zone-map / partition pruning). The filter itself stays —
  /// pruning is conservative.
  bool pushdown_predicates = true;
  /// Moves WHERE conjuncts that touch only one side of a join below the
  /// join (exact rewrite), so joins build and probe pre-filtered inputs.
  bool pushdown_filters = true;
  /// Trims scan (and intermediate projection) output to the columns the
  /// query actually uses.
  bool pushdown_projections = true;
  /// Evaluates literal-only subexpressions at plan time.
  bool fold_constants = true;
};

/// Rewrites `plan` in place and returns it. This turns the logical plan
/// into the physical plan of the paper's Fig. 3 bottom layer: the
/// "pushed down WHERE filters to obtain a smaller in-memory table" of
/// section 4.4.2 is exactly pushdown_predicates + pushdown_projections.
Result<PlanPtr> OptimizePlan(PlanPtr plan,
                             const OptimizerOptions& options = {});

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_OPTIMIZER_H_
