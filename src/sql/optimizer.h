#ifndef BAUPLAN_SQL_OPTIMIZER_H_
#define BAUPLAN_SQL_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/logical_plan.h"

namespace bauplan::sql {

/// Which rewrites to run; benches toggle these to ablate their effect.
struct OptimizerOptions {
  /// Converts `col <op> literal` WHERE conjuncts into scan predicate
  /// hints (zone-map / partition pruning). The filter itself stays —
  /// pruning is conservative.
  bool pushdown_predicates = true;
  /// Moves WHERE conjuncts that touch only one side of a join below the
  /// join (exact rewrite), so joins build and probe pre-filtered inputs.
  bool pushdown_filters = true;
  /// Trims scan (and intermediate projection) output to the columns the
  /// query actually uses.
  bool pushdown_projections = true;
  /// Evaluates literal-only subexpressions at plan time.
  bool fold_constants = true;
  /// Replaces subtrees whose filter predicate the interval-domain
  /// analysis proves always false with an empty scan, and propagates
  /// emptiness upward where exact (filters, projects, sorts, limits,
  /// inner joins, grouped aggregates — never global aggregates, which
  /// emit a row even on empty input). Exact, bit-identical rewrite.
  bool prune_contradictions = true;
  /// With a non-empty `required_output_columns`, trims the plan's root
  /// output to those columns (cross-node projection trimming: lineage
  /// says no consumer reads the rest). The set is intersected with the
  /// root schema and at least one column survives, so row counts are
  /// preserved; the kept columns are bit-identical to the untrimmed
  /// plan's.
  bool trim_output_columns = true;
  /// Columns some consumer actually reads from this query's output
  /// (computed from the cross-pipeline lineage graph); empty = keep
  /// everything.
  std::vector<std::string> required_output_columns;
};

/// Rewrites `plan` in place and returns it. This turns the logical plan
/// into the physical plan of the paper's Fig. 3 bottom layer: the
/// "pushed down WHERE filters to obtain a smaller in-memory table" of
/// section 4.4.2 is exactly pushdown_predicates + pushdown_projections.
Result<PlanPtr> OptimizePlan(PlanPtr plan,
                             const OptimizerOptions& options = {});

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_OPTIMIZER_H_
