#ifndef BAUPLAN_SQL_LOGICAL_PLAN_H_
#define BAUPLAN_SQL_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/type.h"
#include "format/predicate.h"
#include "sql/ast.h"

namespace bauplan::sql {

enum class PlanKind {
  kScan,
  kFilter,
  kProject,
  kAggregate,
  kJoin,
  kSort,
  kLimit,
  /// Row-level deduplication (SELECT DISTINCT).
  kDistinct,
  /// Bag concatenation of same-shape children (UNION ALL).
  kUnion,
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// One named aggregate computation: AVG(fare) AS avg_fare.
struct AggregateItem {
  /// COUNT/SUM/AVG/MIN/MAX.
  std::string function;
  /// Argument expression; null for COUNT(*).
  ExprPtr arg;
  bool distinct = false;
  std::string output_name;
};

/// A node of the logical (and, after optimization, physical) plan. The
/// optimizer rewrites this tree in place: pushing predicates into Scan
/// nodes, trimming Scan projections, and folding constants — the same plan
/// shape the paper's Fig. 3 middle layer depicts.
struct PlanNode {
  PlanKind kind;
  /// Output schema of this node.
  columnar::Schema schema;
  std::vector<PlanPtr> children;

  // kScan
  std::string table_name;
  std::string table_alias;
  /// Columns the scan must produce (projection pushdown); empty = all.
  std::vector<std::string> scan_columns;
  /// Predicates pushed into the scan (zone-map / partition pruning).
  std::vector<format::ColumnPredicate> scan_predicates;
  /// The optimizer proved this subtree returns no rows
  /// (prune_contradictions): executors emit an empty table with this
  /// node's schema without touching the source. `table_name` may be
  /// empty when the scan replaced a non-scan subtree.
  bool empty_scan = false;

  // kFilter
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> expressions;
  std::vector<std::string> output_names;

  // kAggregate
  std::vector<ExprPtr> group_by;
  std::vector<std::string> group_names;
  std::vector<AggregateItem> aggregates;

  // kJoin
  JoinType join_type = JoinType::kInner;
  /// Equi-join keys (left expr = right expr), extracted from ON.
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;
  /// Residual non-equi condition evaluated on joined rows; may be null.
  ExprPtr residual;

  // kSort
  std::vector<OrderKey> sort_keys;

  // kLimit
  int64_t limit = -1;

  /// Indented, multi-line rendering for tests, EXPLAIN and docs.
  std::string ToString(int indent = 0) const;
};

PlanPtr MakePlanNode(PlanKind kind);

}  // namespace bauplan::sql

#endif  // BAUPLAN_SQL_LOGICAL_PLAN_H_
