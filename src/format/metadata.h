#ifndef BAUPLAN_FORMAT_METADATA_H_
#define BAUPLAN_FORMAT_METADATA_H_

#include <cstdint>
#include <vector>

#include "columnar/compute.h"
#include "columnar/type.h"
#include "common/bytes.h"
#include "common/result.h"
#include "format/encoding.h"

namespace bauplan::format {

/// Location, encoding and zone map of one column chunk within a row group.
struct ColumnChunkMeta {
  Encoding encoding = Encoding::kPlain;
  /// Absolute byte offset of the chunk in the file.
  uint64_t offset = 0;
  /// Encoded size in bytes.
  uint64_t size = 0;
  /// Min/max/null-count zone map for predicate-based skipping.
  columnar::ColumnStats stats;

  void Serialize(BinaryWriter* writer) const;
  static Result<ColumnChunkMeta> Deserialize(BinaryReader* reader);
};

/// A horizontal slice of the table: one chunk per column.
struct RowGroupMeta {
  int64_t num_rows = 0;
  std::vector<ColumnChunkMeta> columns;

  void Serialize(BinaryWriter* writer) const;
  static Result<RowGroupMeta> Deserialize(BinaryReader* reader);
};

/// The footer of a BPF file: schema plus all row-group metadata. Readers
/// fetch the footer first and then only the chunks the query needs
/// (projection + zone-map skipping), mirroring Parquet's read path.
struct FileMetadata {
  columnar::Schema schema;
  std::vector<RowGroupMeta> row_groups;

  int64_t TotalRows() const {
    int64_t total = 0;
    for (const auto& rg : row_groups) total += rg.num_rows;
    return total;
  }

  void Serialize(BinaryWriter* writer) const;
  static Result<FileMetadata> Deserialize(BinaryReader* reader);
};

}  // namespace bauplan::format

#endif  // BAUPLAN_FORMAT_METADATA_H_
