#ifndef BAUPLAN_FORMAT_PREDICATE_H_
#define BAUPLAN_FORMAT_PREDICATE_H_

#include <string>
#include <vector>

#include "columnar/compute.h"
#include "columnar/value.h"

namespace bauplan::format {

/// Comparison operator of a pushed-down predicate.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpToString(CompareOp op);

/// One conjunct of a pushed-down filter: `column <op> literal`. The engine's
/// optimizer extracts these from WHERE clauses; the file reader and the
/// table scan planner use them to skip row groups / data files whose
/// zone-map [min, max] range cannot satisfy the predicate.
struct ColumnPredicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  columnar::Value value;

  std::string ToString() const;

  /// True when a chunk with the given stats MIGHT contain matching rows;
  /// false only when the zone map proves no row can match. Conservative:
  /// missing/null stats always return true.
  bool MightMatch(const columnar::ColumnStats& stats) const;

  /// Evaluates the predicate against a concrete value (null never matches,
  /// per SQL three-valued logic collapsing to false).
  bool Matches(const columnar::Value& v) const;
};

/// True when every predicate (conjunction) might match the stats.
bool MightMatchAll(const std::vector<ColumnPredicate>& predicates,
                   const std::string& column,
                   const columnar::ColumnStats& stats);

}  // namespace bauplan::format

#endif  // BAUPLAN_FORMAT_PREDICATE_H_
