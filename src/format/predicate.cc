#include "format/predicate.h"

#include "common/strings.h"

namespace bauplan::format {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ColumnPredicate::ToString() const {
  return StrCat(column, " ", CompareOpToString(op), " ", value.ToString());
}

bool ColumnPredicate::MightMatch(const columnar::ColumnStats& stats) const {
  // No usable zone map (all nulls / empty chunk): cannot prune unless the
  // chunk is provably all-null, in which case no comparison can match.
  if (stats.min.is_null() || stats.max.is_null()) {
    return stats.null_count < stats.value_count ? true
           : stats.value_count == 0             ? true
                                                : false;
  }
  if (value.is_null()) return false;  // `col <op> NULL` never matches
  // Incomparable literal/stats types (e.g. a string literal against a
  // numeric column): never prune — the exact filter decides.
  {
    columnar::TypeId lit = value.type();
    columnar::TypeId col = stats.min.type();
    bool comparable = lit == col || (columnar::IsNumeric(lit) &&
                                     columnar::IsNumeric(col));
    if (!comparable) return true;
  }
  switch (op) {
    case CompareOp::kEq:
      return value.Compare(stats.min) >= 0 && value.Compare(stats.max) <= 0;
    case CompareOp::kNe:
      // Only prunable when every value equals the literal.
      return !(stats.min == stats.max && stats.min == value &&
               stats.null_count == 0);
    case CompareOp::kLt:
      return stats.min.Compare(value) < 0;
    case CompareOp::kLe:
      return stats.min.Compare(value) <= 0;
    case CompareOp::kGt:
      return stats.max.Compare(value) > 0;
    case CompareOp::kGe:
      return stats.max.Compare(value) >= 0;
  }
  return true;
}

bool ColumnPredicate::Matches(const columnar::Value& v) const {
  if (v.is_null() || value.is_null()) return false;
  int cmp = v.Compare(value);
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

bool MightMatchAll(const std::vector<ColumnPredicate>& predicates,
                   const std::string& column,
                   const columnar::ColumnStats& stats) {
  for (const auto& pred : predicates) {
    if (pred.column == column && !pred.MightMatch(stats)) return false;
  }
  return true;
}

}  // namespace bauplan::format
