#ifndef BAUPLAN_FORMAT_WRITER_H_
#define BAUPLAN_FORMAT_WRITER_H_

#include <cstdint>

#include "columnar/table.h"
#include "common/bytes.h"
#include "common/result.h"

namespace bauplan::format {

/// Knobs for writing a BPF file.
struct WriteOptions {
  /// Maximum rows per row group; smaller groups give finer-grained
  /// zone-map skipping at the cost of footer size.
  int64_t row_group_size = 64 * 1024;
  /// When false, every chunk is written kPlain (used by benchmarks to
  /// ablate encoding wins).
  bool enable_encodings = true;
};

/// Serializes `table` into a complete BPF file image:
///   [magic][chunk bytes ...][footer][footer_size u32][magic]
/// Each column chunk carries min/max/null statistics in the footer.
Result<Bytes> WriteBpfFile(const columnar::Table& table,
                           const WriteOptions& options = {});

}  // namespace bauplan::format

#endif  // BAUPLAN_FORMAT_WRITER_H_
