#include "format/writer.h"

#include <algorithm>

#include "columnar/compute.h"
#include "format/encoding.h"
#include "format/metadata.h"

namespace bauplan::format {

namespace {
constexpr uint32_t kBpfMagic = 0x31465042;  // "BPF1"
}  // namespace

Result<Bytes> WriteBpfFile(const columnar::Table& table,
                           const WriteOptions& options) {
  if (options.row_group_size <= 0) {
    return Status::InvalidArgument("row_group_size must be positive");
  }
  BinaryWriter writer;
  writer.PutU32(kBpfMagic);

  FileMetadata metadata;
  metadata.schema = table.schema();

  int64_t offset = 0;
  while (offset < table.num_rows() || table.num_rows() == 0) {
    int64_t rows =
        std::min(options.row_group_size, table.num_rows() - offset);
    BAUPLAN_ASSIGN_OR_RETURN(columnar::Table group,
                             columnar::SliceTable(table, offset, rows));
    RowGroupMeta rg_meta;
    rg_meta.num_rows = group.num_rows();
    for (int c = 0; c < group.num_columns(); ++c) {
      const auto& column = group.column(c);
      ColumnChunkMeta chunk;
      chunk.encoding = options.enable_encodings ? ChooseEncoding(*column)
                                                : Encoding::kPlain;
      chunk.stats = columnar::ComputeStats(*column);
      chunk.offset = writer.size();
      BAUPLAN_RETURN_NOT_OK(EncodeArray(*column, chunk.encoding, &writer));
      chunk.size = writer.size() - chunk.offset;
      rg_meta.columns.push_back(std::move(chunk));
    }
    metadata.row_groups.push_back(std::move(rg_meta));
    offset += rows;
    if (table.num_rows() == 0) break;  // single empty row group
  }

  size_t footer_start = writer.size();
  metadata.Serialize(&writer);
  writer.PutU32(static_cast<uint32_t>(writer.size() - footer_start));
  writer.PutU32(kBpfMagic);
  return writer.TakeBuffer();
}

}  // namespace bauplan::format
