#include "format/encoding.h"

#include <unordered_map>

#include "columnar/builder.h"
#include "columnar/serialize.h"
#include "common/strings.h"

namespace bauplan::format {

using columnar::Array;
using columnar::ArrayPtr;
using columnar::AsInt64;
using columnar::AsString;
using columnar::TypeId;

std::string_view EncodingToString(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return "plain";
    case Encoding::kDictionary:
      return "dictionary";
    case Encoding::kRunLength:
      return "run-length";
  }
  return "?";
}

namespace {

/// Sanity cap shared with the plain deserializer: corrupt payloads fail
/// cleanly instead of allocating absurd buffers.
constexpr uint64_t kMaxDecodedValues = 1ull << 28;

/// Counts distinct non-null strings, bailing out once the dictionary would
/// not pay for itself.
bool DictionaryPays(const columnar::StringArray& array) {
  if (array.length() < 16) return false;
  std::unordered_map<std::string_view, uint32_t> dict;
  size_t total_bytes = 0;
  for (int64_t i = 0; i < array.length(); ++i) {
    if (array.IsNull(i)) continue;
    auto v = array.Value(i);
    if (dict.emplace(v, 0).second) total_bytes += v.size();
    // Dictionary must be clearly smaller than half the rows to win.
    if (dict.size() * 2 > static_cast<size_t>(array.length())) return false;
  }
  // Encoded ~= dict bytes + 4B/row vs plain ~= data bytes + 4B/row.
  return total_bytes + dict.size() * 4 < array.data().size();
}

/// Counts runs of equal (value, validity) pairs in an int64 array.
int64_t CountRuns(const columnar::Int64Array& array) {
  if (array.length() == 0) return 0;
  int64_t runs = 1;
  for (int64_t i = 1; i < array.length(); ++i) {
    bool same = array.IsNull(i) == array.IsNull(i - 1) &&
                (array.IsNull(i) || array.Value(i) == array.Value(i - 1));
    if (!same) ++runs;
  }
  return runs;
}

Status EncodeDictionary(const columnar::StringArray& array,
                        BinaryWriter* writer) {
  std::unordered_map<std::string_view, uint32_t> dict;
  std::vector<std::string_view> ordered;
  std::vector<uint32_t> codes;
  codes.reserve(static_cast<size_t>(array.length()));
  for (int64_t i = 0; i < array.length(); ++i) {
    if (array.IsNull(i)) {
      codes.push_back(UINT32_MAX);
      continue;
    }
    auto v = array.Value(i);
    auto [it, inserted] =
        dict.emplace(v, static_cast<uint32_t>(ordered.size()));
    if (inserted) ordered.push_back(v);
    codes.push_back(it->second);
  }
  writer->PutU64(static_cast<uint64_t>(array.length()));
  writer->PutU32(static_cast<uint32_t>(ordered.size()));
  for (auto v : ordered) writer->PutString(v);
  writer->PutRaw(codes.data(), codes.size() * sizeof(uint32_t));
  return Status::OK();
}

Result<ArrayPtr> DecodeDictionary(BinaryReader* reader) {
  BAUPLAN_ASSIGN_OR_RETURN(uint64_t length, reader->GetU64());
  if (length > kMaxDecodedValues) {
    return Status::IOError("implausible dictionary length");
  }
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t dict_size, reader->GetU32());
  if (dict_size > reader->Remaining()) {
    return Status::IOError("implausible dictionary size");
  }
  std::vector<std::string> dict;
  dict.reserve(dict_size);
  for (uint32_t i = 0; i < dict_size; ++i) {
    BAUPLAN_ASSIGN_OR_RETURN(std::string v, reader->GetString());
    dict.push_back(std::move(v));
  }
  if (length * sizeof(uint32_t) > reader->Remaining()) {
    return Status::IOError("dictionary codes extend past payload");
  }
  std::vector<uint32_t> codes(length);
  BAUPLAN_RETURN_NOT_OK(reader->GetRaw(codes.data(),
                                       length * sizeof(uint32_t)));
  columnar::StringBuilder builder;
  for (uint32_t code : codes) {
    if (code == UINT32_MAX) {
      builder.AppendNull();
    } else if (code < dict.size()) {
      builder.Append(dict[code]);
    } else {
      return Status::IOError("dictionary code out of range");
    }
  }
  return builder.Finish();
}

Status EncodeRunLength(const columnar::Int64Array& array,
                       BinaryWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(array.type()));
  writer->PutU64(static_cast<uint64_t>(array.length()));
  int64_t i = 0;
  while (i < array.length()) {
    bool is_null = array.IsNull(i);
    int64_t value = is_null ? 0 : array.Value(i);
    int64_t run = 1;
    while (i + run < array.length() && array.IsNull(i + run) == is_null &&
           (is_null || array.Value(i + run) == value)) {
      ++run;
    }
    writer->PutU8(is_null ? 0 : 1);
    writer->PutI64(value);
    writer->PutU64(static_cast<uint64_t>(run));
    i += run;
  }
  return Status::OK();
}

Result<ArrayPtr> DecodeRunLength(BinaryReader* reader) {
  BAUPLAN_ASSIGN_OR_RETURN(uint8_t type_tag, reader->GetU8());
  TypeId type = static_cast<TypeId>(type_tag);
  if (type != TypeId::kInt64 && type != TypeId::kTimestamp) {
    return Status::IOError("run-length encoding only stores int64 columns");
  }
  BAUPLAN_ASSIGN_OR_RETURN(uint64_t length, reader->GetU64());
  if (length > kMaxDecodedValues) {
    return Status::IOError("implausible run-length total");
  }
  columnar::Int64Builder builder(type);
  builder.Reserve(length);
  uint64_t total = 0;
  while (total < length) {
    BAUPLAN_ASSIGN_OR_RETURN(uint8_t valid, reader->GetU8());
    BAUPLAN_ASSIGN_OR_RETURN(int64_t value, reader->GetI64());
    BAUPLAN_ASSIGN_OR_RETURN(uint64_t run, reader->GetU64());
    if (run == 0 || total + run > length) {
      return Status::IOError("corrupt run length");
    }
    for (uint64_t k = 0; k < run; ++k) {
      if (valid) {
        builder.Append(value);
      } else {
        builder.AppendNull();
      }
    }
    total += run;
  }
  return builder.Finish();
}

}  // namespace

Encoding ChooseEncoding(const columnar::Array& array) {
  switch (array.type()) {
    case TypeId::kString: {
      const auto* s = AsString(array);
      return DictionaryPays(*s) ? Encoding::kDictionary : Encoding::kPlain;
    }
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      const auto* a = AsInt64(array);
      if (array.length() >= 16) {
        int64_t runs = CountRuns(*a);
        // Each run costs 17B vs 8B/value plain; require clear savings.
        if (runs * 17 < array.length() * 8 / 2) return Encoding::kRunLength;
      }
      return Encoding::kPlain;
    }
    default:
      return Encoding::kPlain;
  }
}

Status EncodeArray(const Array& array, Encoding encoding,
                   BinaryWriter* writer) {
  switch (encoding) {
    case Encoding::kPlain:
      columnar::SerializeArray(array, writer);
      return Status::OK();
    case Encoding::kDictionary: {
      const auto* s = AsString(array);
      if (s == nullptr) {
        return Status::InvalidArgument(
            "dictionary encoding requires a string column");
      }
      return EncodeDictionary(*s, writer);
    }
    case Encoding::kRunLength: {
      const auto* a = AsInt64(array);
      if (a == nullptr) {
        return Status::InvalidArgument(
            "run-length encoding requires an int64 column");
      }
      return EncodeRunLength(*a, writer);
    }
  }
  return Status::InvalidArgument("unknown encoding");
}

Result<ArrayPtr> DecodeArray(Encoding encoding, BinaryReader* reader) {
  switch (encoding) {
    case Encoding::kPlain:
      return columnar::DeserializeArray(reader);
    case Encoding::kDictionary:
      return DecodeDictionary(reader);
    case Encoding::kRunLength:
      return DecodeRunLength(reader);
  }
  return Status::IOError("unknown encoding tag");
}

}  // namespace bauplan::format
