#include "format/reader.h"

#include "columnar/builder.h"
#include "columnar/compute.h"
#include "common/strings.h"
#include "format/encoding.h"

namespace bauplan::format {

namespace {
constexpr uint32_t kBpfMagic = 0x31465042;  // "BPF1"
}  // namespace

Result<BpfReader> BpfReader::Open(Bytes file) {
  // Layout: [magic u32] ... [footer][footer_size u32][magic u32].
  if (file.size() < 12) return Status::IOError("BPF file too small");
  BinaryReader tail(file.data() + file.size() - 8, 8);
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t footer_size, tail.GetU32());
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t end_magic, tail.GetU32());
  if (end_magic != kBpfMagic) {
    return Status::IOError("bad trailing magic in BPF file");
  }
  BinaryReader head(file.data(), 4);
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t head_magic, head.GetU32());
  if (head_magic != kBpfMagic) {
    return Status::IOError("bad leading magic in BPF file");
  }
  if (footer_size + 12 > file.size()) {
    return Status::IOError("footer size exceeds file size");
  }
  size_t footer_start = file.size() - 8 - footer_size;
  BinaryReader footer(file.data() + footer_start, footer_size);
  BAUPLAN_ASSIGN_OR_RETURN(FileMetadata metadata,
                           FileMetadata::Deserialize(&footer));
  // Validate chunk extents before trusting them.
  for (const auto& rg : metadata.row_groups) {
    if (rg.columns.size() !=
        static_cast<size_t>(metadata.schema.num_fields())) {
      return Status::IOError("row group column count mismatch");
    }
    for (const auto& chunk : rg.columns) {
      if (chunk.offset + chunk.size > footer_start) {
        return Status::IOError("column chunk extends past footer");
      }
    }
  }
  return BpfReader(std::move(file), std::move(metadata));
}

Result<columnar::Table> BpfReader::ReadTable(const ReadOptions& options,
                                             ReadStats* stats) const {
  // Resolve projection to column indices.
  std::vector<int> col_indices;
  std::vector<std::string> col_names = options.columns;
  if (col_names.empty()) {
    for (const auto& f : metadata_.schema.fields()) col_names.push_back(f.name);
  }
  for (const auto& name : col_names) {
    int idx = metadata_.schema.GetFieldIndex(name);
    if (idx < 0) {
      return Status::NotFound(StrCat("no column named '", name,
                                     "' in BPF file"));
    }
    col_indices.push_back(idx);
  }
  BAUPLAN_ASSIGN_OR_RETURN(columnar::Schema out_schema,
                           metadata_.schema.Select(col_names));

  // Validate that predicate columns exist (they may be outside the
  // projection; skipping only needs footer stats).
  for (const auto& pred : options.predicates) {
    if (metadata_.schema.GetFieldIndex(pred.column) < 0) {
      return Status::NotFound(StrCat("predicate column '", pred.column,
                                     "' not in BPF file"));
    }
  }

  ReadStats local;
  local.row_groups_total =
      static_cast<int64_t>(metadata_.row_groups.size());

  std::vector<columnar::Table> pieces;
  for (const auto& rg : metadata_.row_groups) {
    // Zone-map skipping over all predicate columns.
    bool keep = true;
    for (const auto& pred : options.predicates) {
      int pidx = metadata_.schema.GetFieldIndex(pred.column);
      const auto& chunk = rg.columns[static_cast<size_t>(pidx)];
      if (!pred.MightMatch(chunk.stats)) {
        keep = false;
        break;
      }
    }
    if (!keep) {
      for (const auto& chunk : rg.columns) {
        local.bytes_skipped += static_cast<int64_t>(chunk.size);
      }
      continue;
    }
    ++local.row_groups_read;
    std::vector<columnar::ArrayPtr> columns;
    for (int idx : col_indices) {
      const auto& chunk = rg.columns[static_cast<size_t>(idx)];
      BinaryReader reader(file_.data() + chunk.offset, chunk.size);
      BAUPLAN_ASSIGN_OR_RETURN(columnar::ArrayPtr array,
                               DecodeArray(chunk.encoding, &reader));
      if (array->length() != rg.num_rows) {
        return Status::IOError("decoded chunk length mismatch");
      }
      local.bytes_read += static_cast<int64_t>(chunk.size);
      columns.push_back(std::move(array));
    }
    BAUPLAN_ASSIGN_OR_RETURN(columnar::Table piece,
                             columnar::Table::Make(out_schema,
                                                   std::move(columns)));
    pieces.push_back(std::move(piece));
  }

  if (stats != nullptr) *stats = local;
  if (pieces.empty()) {
    // Either the file is empty or every group was skipped: empty table.
    std::vector<columnar::ArrayPtr> empties;
    for (const auto& f : out_schema.fields()) {
      empties.push_back(columnar::MakeBuilder(f.type)->Finish());
    }
    return columnar::Table::Make(out_schema, std::move(empties));
  }
  if (pieces.size() == 1) return pieces[0];
  return columnar::ConcatTables(pieces);
}

}  // namespace bauplan::format
