#include "format/metadata.h"

namespace bauplan::format {

namespace {

void SerializeStats(const columnar::ColumnStats& stats, BinaryWriter* w) {
  stats.min.Serialize(w);
  stats.max.Serialize(w);
  w->PutI64(stats.null_count);
  w->PutI64(stats.value_count);
}

Result<columnar::ColumnStats> DeserializeStats(BinaryReader* r) {
  columnar::ColumnStats stats;
  BAUPLAN_ASSIGN_OR_RETURN(stats.min, columnar::Value::Deserialize(r));
  BAUPLAN_ASSIGN_OR_RETURN(stats.max, columnar::Value::Deserialize(r));
  BAUPLAN_ASSIGN_OR_RETURN(stats.null_count, r->GetI64());
  BAUPLAN_ASSIGN_OR_RETURN(stats.value_count, r->GetI64());
  return stats;
}

}  // namespace

void ColumnChunkMeta::Serialize(BinaryWriter* writer) const {
  writer->PutU8(static_cast<uint8_t>(encoding));
  writer->PutU64(offset);
  writer->PutU64(size);
  SerializeStats(stats, writer);
}

Result<ColumnChunkMeta> ColumnChunkMeta::Deserialize(BinaryReader* reader) {
  ColumnChunkMeta meta;
  BAUPLAN_ASSIGN_OR_RETURN(uint8_t enc, reader->GetU8());
  if (enc > static_cast<uint8_t>(Encoding::kRunLength)) {
    return Status::IOError("invalid encoding tag in column chunk meta");
  }
  meta.encoding = static_cast<Encoding>(enc);
  BAUPLAN_ASSIGN_OR_RETURN(meta.offset, reader->GetU64());
  BAUPLAN_ASSIGN_OR_RETURN(meta.size, reader->GetU64());
  BAUPLAN_ASSIGN_OR_RETURN(meta.stats, DeserializeStats(reader));
  return meta;
}

void RowGroupMeta::Serialize(BinaryWriter* writer) const {
  writer->PutI64(num_rows);
  writer->PutU32(static_cast<uint32_t>(columns.size()));
  for (const auto& col : columns) col.Serialize(writer);
}

Result<RowGroupMeta> RowGroupMeta::Deserialize(BinaryReader* reader) {
  RowGroupMeta meta;
  BAUPLAN_ASSIGN_OR_RETURN(meta.num_rows, reader->GetI64());
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t ncols, reader->GetU32());
  if (ncols > reader->Remaining()) {
    return Status::IOError("implausible column count in row group");
  }
  meta.columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    BAUPLAN_ASSIGN_OR_RETURN(ColumnChunkMeta col,
                             ColumnChunkMeta::Deserialize(reader));
    meta.columns.push_back(std::move(col));
  }
  return meta;
}

void FileMetadata::Serialize(BinaryWriter* writer) const {
  schema.Serialize(writer);
  writer->PutU32(static_cast<uint32_t>(row_groups.size()));
  for (const auto& rg : row_groups) rg.Serialize(writer);
}

Result<FileMetadata> FileMetadata::Deserialize(BinaryReader* reader) {
  FileMetadata meta;
  BAUPLAN_ASSIGN_OR_RETURN(meta.schema,
                           columnar::Schema::Deserialize(reader));
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t ngroups, reader->GetU32());
  if (ngroups > reader->Remaining()) {
    return Status::IOError("implausible row group count");
  }
  meta.row_groups.reserve(ngroups);
  for (uint32_t i = 0; i < ngroups; ++i) {
    BAUPLAN_ASSIGN_OR_RETURN(RowGroupMeta rg,
                             RowGroupMeta::Deserialize(reader));
    meta.row_groups.push_back(std::move(rg));
  }
  return meta;
}

}  // namespace bauplan::format
