#ifndef BAUPLAN_FORMAT_ENCODING_H_
#define BAUPLAN_FORMAT_ENCODING_H_

#include <cstdint>

#include "columnar/array.h"
#include "common/bytes.h"
#include "common/result.h"

namespace bauplan::format {

/// Physical encoding of one column chunk inside a BPF file.
enum class Encoding : uint8_t {
  /// Values stored verbatim (the columnar serialization).
  kPlain = 0,
  /// Distinct values once + one u32 code per row. Chosen for string
  /// columns whose cardinality is well below the row count.
  kDictionary = 1,
  /// (value, run-length) pairs. Chosen for int64/timestamp columns whose
  /// run structure compresses (e.g. sorted or low-cardinality data).
  kRunLength = 2,
};

std::string_view EncodingToString(Encoding encoding);

/// Picks the cheapest encoding for `array` by estimating encoded sizes.
Encoding ChooseEncoding(const columnar::Array& array);

/// Encodes `array` with `encoding` into `writer`.
Status EncodeArray(const columnar::Array& array, Encoding encoding,
                   BinaryWriter* writer);

/// Decodes one array previously written by EncodeArray.
Result<columnar::ArrayPtr> DecodeArray(Encoding encoding,
                                       BinaryReader* reader);

}  // namespace bauplan::format

#endif  // BAUPLAN_FORMAT_ENCODING_H_
