#ifndef BAUPLAN_FORMAT_READER_H_
#define BAUPLAN_FORMAT_READER_H_

#include <string>
#include <vector>

#include "columnar/table.h"
#include "common/bytes.h"
#include "common/result.h"
#include "format/metadata.h"
#include "format/predicate.h"

namespace bauplan::format {

/// What to read out of a BPF file.
struct ReadOptions {
  /// Columns to materialize; empty means all columns (in schema order).
  std::vector<std::string> columns;
  /// Conjunctive predicates used for row-group skipping via zone maps.
  /// Skipping is conservative: surviving row groups may still contain
  /// non-matching rows (the engine re-applies the filter exactly).
  std::vector<ColumnPredicate> predicates;
};

/// Counters describing what a read actually touched; the scan-planning
/// bench reports these.
struct ReadStats {
  int64_t row_groups_total = 0;
  int64_t row_groups_read = 0;
  int64_t bytes_read = 0;
  int64_t bytes_skipped = 0;
};

/// Random-access reader over a complete BPF file image.
class BpfReader {
 public:
  /// Parses and validates the footer; IOError on corrupt files.
  static Result<BpfReader> Open(Bytes file);

  const FileMetadata& metadata() const { return metadata_; }
  const columnar::Schema& schema() const { return metadata_.schema; }
  int64_t num_rows() const { return metadata_.TotalRows(); }

  /// Materializes the requested columns of all row groups that survive
  /// zone-map skipping, concatenated into one table. `stats`, when
  /// non-null, receives what the read touched.
  Result<columnar::Table> ReadTable(const ReadOptions& options = {},
                                    ReadStats* stats = nullptr) const;

 private:
  BpfReader(Bytes file, FileMetadata metadata)
      : file_(std::move(file)), metadata_(std::move(metadata)) {}

  Bytes file_;
  FileMetadata metadata_;
};

}  // namespace bauplan::format

#endif  // BAUPLAN_FORMAT_READER_H_
